"""A dichotomy-aware query evaluator.

``evaluate`` routes a (query, database) pair to the right engine:

* safe queries (Definition 2.4) go to the polynomial-time lifted
  evaluator — the PTIME side of Theorem 2.1;
* unsafe queries fall back to the weighted model counter, which
  compiles the lineage to a d-DNNF circuit and evaluates it (they are
  #P-hard, Theorem 2.2, so no general shortcut exists — but the
  compilation is paid at most once per lineage).  Under the default
  ``"auto"`` method the compilation runs under a node budget and
  degrades to Monte-Carlo estimation with a Hoeffding confidence
  interval when the circuit blows up — the result's ``method`` then
  reads ``"estimate"`` and its ``estimate`` field carries the bound;
* ``method`` can force a specific engine — ``"compiled"`` addresses the
  circuit backend explicitly, ``"wmc"`` the shared compile+evaluate
  oracle, ``"shannon"`` the legacy recursive search, ``"estimate"``
  the Monte-Carlo estimator — or request ``"cross-check"``, which runs
  every applicable exact engine and asserts agreement (used throughout
  the test-suite and benchmarks).

Batch workloads should use ``evaluate_batch`` (many databases, one
query) or ``probability_sweep`` (one lineage, many weight vectors):
both ride the module-level compilation cache, so the exponential
lineage search runs once and each extra evaluation is linear in the
circuit size.

This is the front door a downstream user of the library is expected to
call.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.booleans.adaptive import (
    ENGINE_LABELS,
    estimate_batch_with,
    estimate_with,
)
from repro.booleans.approximate import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    ProbabilityEstimate,
)
from repro.booleans.circuit import Circuit, CompilationBudgetExceeded
from repro.booleans.cnf import CNF
from repro.core.queries import Query
from repro.core.safety import is_safe
from repro.tid.brute import probability_brute
from repro.tid.database import TID
from repro.tid.lifted import lifted_probability
from repro.tid.lineage import lineage
from repro.tid.wmc import (
    DEFAULT_BUDGET_NODES,
    cnf_probability_auto,
    compiled,
    ensure_tape,
    probability,
    shannon_probability,
)

METHODS = ("auto", "lifted", "wmc", "compiled", "shannon", "brute",
           "estimate", "adaptive", "importance", "cross-check")

#: Methods answered by a sampler rather than an exact engine; the
#: result's ``method`` records the sampler that actually ran
#: ("estimate" = fixed-n Hoeffding, "adaptive" = sequential
#: empirical-Bernstein, "importance" = self-normalized tilted).
ESTIMATE_METHODS = ("estimate", "adaptive", "importance")


@dataclass(frozen=True)
class EvaluationResult:
    """Pr(Q) together with provenance of how it was computed.

    ``estimate`` is populated only when the Monte-Carlo engine
    answered (``method == "estimate"``): ``value`` is then the point
    estimate and ``estimate`` carries its Hoeffding interval.
    """

    value: Fraction
    method: str
    safe: bool
    estimate: ProbabilityEstimate | None = None

    def __eq__(self, other):
        if isinstance(other, EvaluationResult):
            return (self.value, self.method, self.safe) == \
                (other.value, other.method, other.safe)
        # Delegate so numeric comparisons (Fraction, int, float) still
        # work but genuinely foreign types get NotImplemented back,
        # letting Python try the reflected __eq__ instead of forcing
        # an unconditional False.
        return self.value.__eq__(other)

    def __hash__(self):
        # A custom __eq__ suppresses the dataclass-generated __hash__,
        # so it must be restated explicitly.  Hash on the value alone:
        # results equal to each other or to a bare Fraction (see __eq__)
        # then always hash alike, keeping dict/set semantics consistent.
        return hash(self.value)

    @property
    def engine(self) -> str:
        """Which engine class answered, mirroring ``AutoProbability``:
        the sampler's label (``"estimate"``, ``"adaptive"``,
        ``"importance"``) for the Monte-Carlo paths, ``"exact"`` for
        every other method (they all compute the true rational)."""
        return self.method if self.method in ESTIMATE_METHODS \
            else "exact"

    def as_dict(self) -> dict:
        """A JSON-safe rendering (exact value as a ``"num/den"``
        string, float convenience field, engine/method provenance, and
        the Hoeffding interval when the estimator answered) — what the
        service protocol puts on the wire."""
        payload = {
            "value": str(self.value),
            "float": float(self.value),
            "method": self.method,
            "engine": self.engine,
            "safe": self.safe,
        }
        if self.estimate is not None:
            payload["estimate"] = self.estimate.as_dict()
        return payload


def _shannon_query_probability(query: Query, tid: TID) -> Fraction:
    """Pr(Q) via the legacy recursive engine (recomputes every call)."""
    if query.is_false():
        return Fraction(0)
    return shannon_probability(lineage(query, tid), tid.probability)


def evaluate(query: Query, tid: TID, method: str = "auto", *,
             budget_nodes: int | None = DEFAULT_BUDGET_NODES,
             epsilon=DEFAULT_EPSILON, delta=DEFAULT_DELTA,
             rng=None, estimator: str = "hoeffding",
             relative_error=None, planner=None) -> EvaluationResult:
    """Pr(Q) over the TID, routed per the dichotomy.

    ``budget_nodes``/``epsilon``/``delta``/``rng`` govern the
    ``"auto"`` and sampled methods: ``auto`` answers exactly (method
    ``"lifted"`` or ``"wmc"``) whenever it can, and falls back to the
    estimator — recording the sampler's label and its confidence
    interval on the result — only when exact compilation of an unsafe
    query's lineage exceeds the node budget.  ``estimator`` picks the
    fallback sampler (``"hoeffding"``/``"adaptive"``/``"importance"``)
    and ``relative_error`` switches the sequential samplers to a
    relative-width target; methods ``"adaptive"``/``"importance"``
    force the named sampler directly, as ``"estimate"`` forces the
    ``estimator`` (default fixed-n Hoeffding).  ``planner`` is an
    optional ``repro.booleans.adaptive.BudgetPlanner`` choosing the
    compilation budget from the observed circuit-size trajectory.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; pick from {METHODS}")
    safe = is_safe(query)
    if method == "auto":
        if safe:
            return EvaluationResult(lifted_probability(query, tid),
                                    "lifted", True)
        if query.is_false():
            return EvaluationResult(Fraction(0), "wmc", False)
        answer = cnf_probability_auto(
            lineage(query, tid), tid.probability,
            budget_nodes=budget_nodes, epsilon=epsilon, delta=delta,
            rng=rng, estimator=estimator,
            relative_error=relative_error, planner=planner)
        if answer.engine != "exact":
            return EvaluationResult(answer.value, answer.engine, False,
                                    answer.estimate)
        return EvaluationResult(answer.value, "wmc", False)
    if method in ESTIMATE_METHODS:
        sampler = estimator if method == "estimate" else method
        label = ENGINE_LABELS[sampler]
        if query.is_false():
            # No sampling needed: Pr is exactly 0, reported as a
            # degenerate zero-width interval so the documented
            # invariant (a sampled method implies a populated
            # estimate) holds.
            zero = Fraction(0)
            return EvaluationResult(
                zero, label, safe,
                ProbabilityEstimate(zero, zero, zero, 0, 0,
                                    samples_used=0))
        estimate = estimate_with(
            sampler, lineage(query, tid), tid.probability, epsilon,
            delta, rng, relative_error=relative_error)
        return EvaluationResult(estimate.estimate, label, safe,
                                estimate)
    if method == "lifted":
        return EvaluationResult(lifted_probability(query, tid),
                                "lifted", safe)
    if method == "wmc":
        return EvaluationResult(probability(query, tid), "wmc", safe)
    if method == "compiled":
        # Same engine as "wmc" (which is circuit-backed), addressed
        # explicitly; provenance records the caller's choice.
        return EvaluationResult(probability(query, tid),
                                "compiled", safe)
    if method == "shannon":
        return EvaluationResult(_shannon_query_probability(query, tid),
                                "shannon", safe)
    if method == "brute":
        return EvaluationResult(probability_brute(query, tid),
                                "brute", safe)
    # cross-check
    wmc_value = probability(query, tid)
    shannon_value = _shannon_query_probability(query, tid)
    if wmc_value != shannon_value:  # pragma: no cover - engine bug guard
        raise AssertionError(
            f"engine disagreement: compiled={wmc_value} "
            f"shannon={shannon_value}")
    brute_value = probability_brute(query, tid)
    if wmc_value != brute_value:  # pragma: no cover - engine bug guard
        raise AssertionError(
            f"engine disagreement: wmc={wmc_value} brute={brute_value}")
    if safe:
        lifted_value = lifted_probability(query, tid)
        if lifted_value != wmc_value:  # pragma: no cover
            raise AssertionError(
                f"lifted={lifted_value} disagrees with wmc={wmc_value}")
    return EvaluationResult(wmc_value, "cross-check", safe)


def evaluate_batch(query: Query, tids: Iterable[TID],
                   method: str = "auto", *,
                   budget_nodes: int | None = DEFAULT_BUDGET_NODES,
                   epsilon=DEFAULT_EPSILON, delta=DEFAULT_DELTA,
                   rng=None, estimator: str = "hoeffding",
                   relative_error=None,
                   planner=None) -> list[EvaluationResult]:
    """Pr(Q) over many databases, compiling each distinct lineage once.

    Databases that ground to the same lineage CNF (same domains and
    certain/absent tuples, arbitrary probabilities elsewhere) share a
    single compilation through the module-level circuit cache, so the
    marginal cost of each extra database is one linear circuit pass.
    The ``auto`` budget/estimator knobs apply per database; a lineage
    past budget degrades that database's result to an estimate without
    affecting the others.
    """
    return [evaluate(query, tid, method, budget_nodes=budget_nodes,
                     epsilon=epsilon, delta=delta, rng=rng,
                     estimator=estimator, relative_error=relative_error,
                     planner=planner)
            for tid in tids]


def endpoint_weight_grid(formula: CNF, tid: TID, k: int,
                         u="u", v="v") -> list[dict]:
    """k weight vectors varying the R(u)/T(v) endpoint marginals over
    a fixed block lineage — the Eq. 20 / interpolation grid shape
    shared by the ``repro sweep`` CLI, ``benchmarks/bench_sweep.py``,
    and the sweep tests.

    Vector i pins R(u) to (i+1)/(k+2) and T(v) to (k+1-i)/(k+2); all
    other tuple marginals stay at the TID's values.
    """
    from repro.tid.database import r_tuple, t_tuple

    base = {var: tid.probability(var) for var in formula.variables()}
    r_u, t_v = r_tuple(u), t_tuple(v)
    grid = []
    for i in range(k):
        weights = dict(base)
        weights[r_u] = Fraction(i + 1, k + 2)
        weights[t_v] = Fraction(k + 1 - i, k + 2)
        grid.append(weights)
    return grid


def _sweep_worker(payload):
    """Evaluate one chunk of a sweep in a worker process.

    The circuit travels as its serialized bytes (``Circuit.from_bytes``
    is cheap relative to compilation) so workers never recompile.
    """
    data, chunk, default, numeric = payload
    circuit = Circuit.from_bytes(data)
    return circuit.probability_batch(chunk, default, numeric)


def _chunked(items: list, chunks: int) -> list[list]:
    size, extra = divmod(len(items), chunks)
    out, start = [], 0
    for i in range(chunks):
        stop = start + size + (1 if i < extra else 0)
        if stop > start:
            out.append(items[start:stop])
        start = stop
    return out


def probability_sweep(formula: CNF,
                      weight_maps: Sequence[Mapping | None],
                      default: Fraction | None = None,
                      numeric: str = "exact",
                      processes: int | None = None,
                      cross_check: int = 2, *,
                      budget_nodes: int | None = None,
                      epsilon=DEFAULT_EPSILON, delta=DEFAULT_DELTA,
                      rng=None, estimator: str = "hoeffding",
                      relative_error=None, planner=None) -> list:
    """Pr(F) under many weight vectors: compile once, sweep batched.

    This is the primitive behind the reduction pipelines' probability
    grids (block-matrix entries, Type-II theta-sweeps, interpolation
    points): one exponential compilation (riding the two-tier circuit
    cache), then a single node-ordered batched pass over all weight
    maps (``Circuit.probability_batch``).  Each entry of
    ``weight_maps`` may be a mapping, a callable, or None (all
    variables at ``default``, by default 1/2).

    ``numeric="float"`` switches the pass to hardware floats; up to
    ``cross_check`` evenly-spaced vectors are then re-evaluated
    exactly and an ``ArithmeticError`` is raised if the float result
    drifts beyond 1e-9 relative tolerance.  ``processes`` > 1 splits
    large grids across worker processes (mapping/None weight maps
    only — callables do not pickle).

    Passing ``budget_nodes`` (or a ``planner``, which picks the budget
    from the observed circuit-size trajectory) switches the sweep to
    the ``auto`` policy: if exact compilation exceeds the budget, each
    weight vector is answered by an (epsilon, delta) estimate from the
    chosen ``estimator`` instead (one sampling run per vector, a
    shared seeded ``rng``; ``"adaptive"``/``"importance"`` stop each
    vector as early as its variance allows, and ``relative_error``
    switches them to a relative-width target).  The return stays a
    plain value list either way; callers that need the engine/interval
    provenance should use ``repro.tid.wmc.probability_batch_auto``
    directly.
    """
    if planner is not None:
        budget_nodes = planner.budget_for(formula, budget_nodes)
    if budget_nodes is not None:
        try:
            compiled(formula, budget_nodes)
        except CompilationBudgetExceeded:
            values = [estimate.estimate for estimate in
                      estimate_batch_with(
                          estimator, formula, weight_maps, epsilon,
                          delta, rng, default, relative_error)]
            # Keep the documented value type of the requested numeric
            # mode even on the degraded engine.
            return [float(v) for v in values] \
                if numeric == "float" else values
        # Under budget: the circuit is now cached, so the exact path
        # below — batched pass, float cross-check, worker processes —
        # proceeds without recompiling.
    circuit = compiled(formula)
    if planner is not None and len(formula):
        # Every exact compile feeds the planner's trajectory — also
        # with no fallback budget, where the planner is still warming
        # up and budget_for returned None.
        planner.observe(len(formula), circuit.size)
    if numeric == "float":
        # Float batches run on the flat instruction tape; resolve it
        # through the two-tier cache up front so a store-persisted
        # sidecar satisfies the flattening (warm processes never
        # re-flatten).
        ensure_tape(formula, circuit)
    weight_maps = list(weight_maps)
    if processes and processes > 1 and len(weight_maps) > 1:
        if any(callable(w) for w in weight_maps):
            raise ValueError(
                "processes > 1 requires mapping (or None) weight maps; "
                "callables cannot be sent to worker processes")
        import multiprocessing

        chunks = _chunked(weight_maps, min(processes, len(weight_maps)))
        data = circuit.to_bytes()
        payloads = [(data, chunk, default, numeric) for chunk in chunks]
        with multiprocessing.Pool(len(chunks)) as pool:
            parts = pool.map(_sweep_worker, payloads)
        values = [v for part in parts for v in part]
    else:
        values = circuit.probability_batch(weight_maps, default, numeric)
    if numeric == "float" and cross_check and weight_maps:
        step = max(1, len(weight_maps) // cross_check)
        for i in list(range(0, len(weight_maps), step))[:cross_check]:
            exact = float(circuit.probability(weight_maps[i], default))
            if abs(values[i] - exact) > 1e-9 * max(1.0, abs(exact)):
                raise ArithmeticError(
                    f"float sweep drifted at vector {i}: "
                    f"float={values[i]!r} exact={exact!r}")
    return values
