"""A dichotomy-aware query evaluator.

``evaluate`` routes a (query, database) pair to the right engine:

* safe queries (Definition 2.4) go to the polynomial-time lifted
  evaluator — the PTIME side of Theorem 2.1;
* unsafe queries fall back to the exact weighted model counter, which
  compiles the lineage to a d-DNNF circuit and evaluates it (they are
  #P-hard, Theorem 2.2, so no general shortcut exists — but the
  compilation is paid at most once per lineage);
* ``method`` can force a specific engine — ``"compiled"`` addresses the
  circuit backend explicitly, ``"wmc"`` the shared compile+evaluate
  oracle, ``"shannon"`` the legacy recursive search — or request
  ``"cross-check"``, which runs every applicable engine and asserts
  agreement (used throughout the test-suite and benchmarks).

Batch workloads should use ``evaluate_batch`` (many databases, one
query) or ``probability_sweep`` (one lineage, many weight vectors):
both ride the module-level compilation cache, so the exponential
lineage search runs once and each extra evaluation is linear in the
circuit size.

This is the front door a downstream user of the library is expected to
call.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.booleans.cnf import CNF
from repro.core.queries import Query
from repro.core.safety import is_safe
from repro.tid.brute import probability_brute
from repro.tid.database import TID
from repro.tid.lifted import lifted_probability
from repro.tid.lineage import lineage
from repro.tid.wmc import compiled, probability, shannon_probability

METHODS = ("auto", "lifted", "wmc", "compiled", "shannon", "brute",
           "cross-check")


@dataclass(frozen=True)
class EvaluationResult:
    """Pr(Q) together with provenance of how it was computed."""

    value: Fraction
    method: str
    safe: bool

    def __eq__(self, other):
        if isinstance(other, EvaluationResult):
            return (self.value, self.method, self.safe) == \
                (other.value, other.method, other.safe)
        return self.value == other

    def __hash__(self):
        # A custom __eq__ suppresses the dataclass-generated __hash__,
        # so it must be restated explicitly.  Hash on the value alone:
        # results equal to each other or to a bare Fraction (see __eq__)
        # then always hash alike, keeping dict/set semantics consistent.
        return hash(self.value)


def _shannon_query_probability(query: Query, tid: TID) -> Fraction:
    """Pr(Q) via the legacy recursive engine (recomputes every call)."""
    if query.is_false():
        return Fraction(0)
    return shannon_probability(lineage(query, tid), tid.probability)


def evaluate(query: Query, tid: TID, method: str = "auto"
             ) -> EvaluationResult:
    """Pr(Q) over the TID, routed per the dichotomy."""
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; pick from {METHODS}")
    safe = is_safe(query)
    if method == "auto":
        if safe:
            return EvaluationResult(lifted_probability(query, tid),
                                    "lifted", True)
        return EvaluationResult(probability(query, tid), "wmc", False)
    if method == "lifted":
        return EvaluationResult(lifted_probability(query, tid),
                                "lifted", safe)
    if method == "wmc":
        return EvaluationResult(probability(query, tid), "wmc", safe)
    if method == "compiled":
        # Same engine as "wmc" (which is circuit-backed), addressed
        # explicitly; provenance records the caller's choice.
        return EvaluationResult(probability(query, tid),
                                "compiled", safe)
    if method == "shannon":
        return EvaluationResult(_shannon_query_probability(query, tid),
                                "shannon", safe)
    if method == "brute":
        return EvaluationResult(probability_brute(query, tid),
                                "brute", safe)
    # cross-check
    wmc_value = probability(query, tid)
    shannon_value = _shannon_query_probability(query, tid)
    if wmc_value != shannon_value:  # pragma: no cover - engine bug guard
        raise AssertionError(
            f"engine disagreement: compiled={wmc_value} "
            f"shannon={shannon_value}")
    brute_value = probability_brute(query, tid)
    if wmc_value != brute_value:  # pragma: no cover - engine bug guard
        raise AssertionError(
            f"engine disagreement: wmc={wmc_value} brute={brute_value}")
    if safe:
        lifted_value = lifted_probability(query, tid)
        if lifted_value != wmc_value:  # pragma: no cover
            raise AssertionError(
                f"lifted={lifted_value} disagrees with wmc={wmc_value}")
    return EvaluationResult(wmc_value, "cross-check", safe)


def evaluate_batch(query: Query, tids: Iterable[TID],
                   method: str = "auto") -> list[EvaluationResult]:
    """Pr(Q) over many databases, compiling each distinct lineage once.

    Databases that ground to the same lineage CNF (same domains and
    certain/absent tuples, arbitrary probabilities elsewhere) share a
    single compilation through the module-level circuit cache, so the
    marginal cost of each extra database is one linear circuit pass.
    """
    return [evaluate(query, tid, method) for tid in tids]


def probability_sweep(formula: CNF,
                      weight_maps: Sequence[Mapping | None],
                      default: Fraction | None = None) -> list[Fraction]:
    """Pr(F) under many weight vectors: compile once, evaluate many.

    This is the primitive behind the reduction pipelines' probability
    grids (block-matrix entries, Type-II theta-sweeps, interpolation
    points): one exponential compilation, then one linear circuit pass
    per weight map.  Each entry of ``weight_maps`` may be a mapping, a
    callable, or None (all variables at ``default``, by default 1/2).
    """
    circuit = compiled(formula)
    return [circuit.probability(weights, default)
            for weights in weight_maps]
