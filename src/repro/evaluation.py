"""A dichotomy-aware query evaluator.

``evaluate`` routes a (query, database) pair to the right engine:

* safe queries (Definition 2.4) go to the polynomial-time lifted
  evaluator — the PTIME side of Theorem 2.1;
* unsafe queries fall back to the exact exponential weighted model
  counter (they are #P-hard, Theorem 2.2, so no general shortcut
  exists);
* ``method`` can force a specific engine, or request
  ``"cross-check"``, which runs every applicable engine and asserts
  agreement (used throughout the test-suite and benchmarks).

This is the front door a downstream user of the library is expected to
call.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.queries import Query
from repro.core.safety import is_safe
from repro.tid.brute import probability_brute
from repro.tid.database import TID
from repro.tid.lifted import lifted_probability
from repro.tid.wmc import probability

METHODS = ("auto", "lifted", "wmc", "brute", "cross-check")


@dataclass(frozen=True)
class EvaluationResult:
    """Pr(Q) together with provenance of how it was computed."""

    value: Fraction
    method: str
    safe: bool

    def __eq__(self, other):
        if isinstance(other, EvaluationResult):
            return (self.value, self.method, self.safe) == \
                (other.value, other.method, other.safe)
        return self.value == other


def evaluate(query: Query, tid: TID, method: str = "auto"
             ) -> EvaluationResult:
    """Pr(Q) over the TID, routed per the dichotomy."""
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; pick from {METHODS}")
    safe = is_safe(query)
    if method == "auto":
        if safe:
            return EvaluationResult(lifted_probability(query, tid),
                                    "lifted", True)
        return EvaluationResult(probability(query, tid), "wmc", False)
    if method == "lifted":
        return EvaluationResult(lifted_probability(query, tid),
                                "lifted", safe)
    if method == "wmc":
        return EvaluationResult(probability(query, tid), "wmc", safe)
    if method == "brute":
        return EvaluationResult(probability_brute(query, tid),
                                "brute", safe)
    # cross-check
    wmc_value = probability(query, tid)
    brute_value = probability_brute(query, tid)
    if wmc_value != brute_value:  # pragma: no cover - engine bug guard
        raise AssertionError(
            f"engine disagreement: wmc={wmc_value} brute={brute_value}")
    if safe:
        lifted_value = lifted_probability(query, tid)
        if lifted_value != wmc_value:  # pragma: no cover
            raise AssertionError(
                f"lifted={lifted_value} disagrees with wmc={wmc_value}")
    return EvaluationResult(wmc_value, "cross-check", safe)
