"""``repro.obs`` — end-to-end request observability.

Span-based tracing with contextvar propagation, per-``(op, stage)``
latency histograms, a bounded ring buffer of completed request
traces, and a slow-request log.  The service server owns a
:class:`Tracer`; the library layers (``tid.wmc``, ``booleans.tape``,
``booleans.store``, the schedulers) only ever call :func:`span`,
which is a no-op costing one ContextVar read when no trace is active.

This package is deliberately stdlib-only and imports nothing from the
rest of ``repro`` so every layer may instrument itself without import
cycles.
"""

from repro.obs.trace import (
    BUCKET_LABELS,
    BUCKETS,
    NULL_SPAN,
    SLOW_LOG_NAME,
    TOTAL_STAGE,
    Span,
    Tracer,
    current_span,
    current_trace_id,
    span,
)

__all__ = [
    "BUCKETS",
    "BUCKET_LABELS",
    "NULL_SPAN",
    "SLOW_LOG_NAME",
    "TOTAL_STAGE",
    "Span",
    "Tracer",
    "current_span",
    "current_trace_id",
    "span",
]
