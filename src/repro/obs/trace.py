"""Span-based request tracing for the service stack.

One request to the query service crosses half the repo — protocol
parsing, workload grounding, the compile pool, the sweep coalescer,
the two cache tiers, the tape kernels — and an aggregate counter
cannot say *which* of those a slow request paid for.  This module is
the per-request answer:

* a **span** is one named stage with a monotonic-clock duration and a
  small tag dict; spans nest via a ``contextvars.ContextVar``, so the
  library layers (``tid.wmc``, ``booleans.tape``, ``booleans.store``,
  the schedulers) call :func:`span` without threading a tracer handle
  through every signature — when no trace is active the call returns
  the shared no-op span and costs one ContextVar read;
* a **trace** is the span tree of one request, rooted by
  :meth:`Tracer.root`; when the root finishes, the completed trace is
  serialized into a bounded ring buffer, every span feeds the
  per-``(op, stage)`` latency histogram, and a trace slower than the
  configured threshold is kept in the slow log (optionally appended
  to a JSONL file for offline triage);
* everything serialized is **hash-seed deterministic**: trace ids are
  counter-based, tags are emitted in sorted key order, and durations
  come from an injectable clock so tests can pin them exactly.

Cross-thread stages (the compile pool runs jobs on executor workers)
attach to the requester's trace via ``contextvars.copy_context`` at
the submission site, or via the manual :meth:`Span.begin` /
:meth:`Span.finish` pair when a stage starts on one thread and ends
on another.  The tracer's single lock guards the ring buffer, the
histograms, and the counters; spans themselves are written by exactly
one thread at a time (begin on the submitter, finish on the worker,
ordered by the executor handoff) and hand their finished record to
the tracer under that lock.
"""

from __future__ import annotations

import json
import threading
import time

from collections import deque
from contextvars import ContextVar
from pathlib import Path

#: Histogram bucket upper bounds, in seconds (+Inf is implicit).  The
#: ladder is fixed — never derived from observed data — so bucket
#: boundaries are identical across processes, hash seeds, and runs,
#: and CI can diff rendered histograms textually.
BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
           0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Exposition labels for the bucket bounds (``le`` values).
BUCKET_LABELS = tuple(repr(b) for b in BUCKETS) + ("+Inf",)

#: The stage name the root span's duration is recorded under in the
#: (op, stage) histograms — the whole-request latency series.
TOTAL_STAGE = "total"

#: File name of the slow-trace JSONL export inside ``trace_dir``.
SLOW_LOG_NAME = "TRACE_slow.jsonl"

_ACTIVE: ContextVar = ContextVar("repro_obs_active_span")


def _tag_value(value):
    """Tags must serialize deterministically: keep JSON scalars as-is,
    render everything else through ``str``."""
    if isinstance(value, (bool, int, str)):
        return value
    return str(value)


class _NullSpan:
    """The shared no-op span: every operation returns immediately.

    This is the entire disabled-tracing hot path — :func:`span`
    returns this singleton whenever no trace is active, so an
    instrumented library call costs one ContextVar read and zero
    allocations.
    """

    __slots__ = ()

    trace_id = None
    span_id = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def begin(self):
        return self

    def finish(self):
        return None

    def tag(self, **tags):
        return self


NULL_SPAN = _NullSpan()


class _Trace:
    """One in-flight request trace: identity plus the finished-span
    list.  Mutated only through ``Tracer`` methods under the tracer's
    lock — the class itself carries no lock on purpose."""

    __slots__ = ("tracer", "trace_id", "op", "tenant", "clock",
                 "started", "records", "span_seq")

    def __init__(self, tracer: "Tracer", trace_id: str, op: str,
                 tenant: str | None):
        self.tracer = tracer
        self.trace_id = trace_id
        self.op = op
        self.tenant = tenant
        self.clock = tracer.clock
        self.started = None
        self.records: list = []
        self.span_seq = 0


class Span:
    """One stage of a trace.

    Use as a context manager for same-thread stages (activates itself
    as the parent of nested spans), or drive :meth:`begin` /
    :meth:`finish` manually for stages that start on one thread and
    end on another (the compile pool's queue-wait).  A span is
    recorded only when it finishes; abandoned spans simply never
    appear in the trace.
    """

    __slots__ = ("_trace", "span_id", "parent_id", "name", "tags",
                 "start", "duration", "_token", "_done")

    def __init__(self, trace: _Trace, parent_id: int | None,
                 name: str, tags: dict):
        self._trace = trace
        self.span_id = trace.tracer._next_span_id(trace)
        self.parent_id = parent_id
        self.name = name
        self.tags = {key: _tag_value(value)
                     for key, value in sorted(tags.items())}
        self.start = None
        self.duration = None
        self._token = None
        self._done = False

    @property
    def trace_id(self) -> str:
        return self._trace.trace_id

    def tag(self, **tags) -> "Span":
        """Attach or overwrite tags mid-span (e.g. a cache-hit flag
        known only after the lookup)."""
        for key, value in sorted(tags.items()):
            self.tags[key] = _tag_value(value)
        return self

    def begin(self) -> "Span":
        """Start the clock without activating the span as the current
        parent (the cross-thread idiom; pair with :meth:`finish`)."""
        if self.start is None:
            self.start = self._trace.clock()
            if self.parent_id is None:
                self._trace.started = self.start
        return self

    def finish(self) -> None:
        """Stop the clock and hand the record to the tracer.  A root
        span's finish seals the whole trace."""
        if self._done or self.start is None:
            return
        self._done = True
        self.duration = self._trace.clock() - self.start
        self._trace.tracer._record(self._trace, self)
        if self.parent_id is None:
            self._trace.tracer._complete(self._trace, self)

    def __enter__(self) -> "Span":
        self.begin()
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        self.finish()
        return False


def current_span():
    """The active span of the calling context, or ``None``."""
    return _ACTIVE.get(None)


def current_trace_id() -> str | None:
    """The active trace id, or ``None`` — the hook schedulers use to
    stamp leader attribution onto shared jobs."""
    active = _ACTIVE.get(None)
    return None if active is None else active.trace_id


def span(name: str, **tags):
    """A child span of the calling context's active span, or the
    shared no-op span when no trace is active.  This is the only
    entry point the instrumented library layers use."""
    parent = _ACTIVE.get(None)
    if parent is None:
        return NULL_SPAN
    return Span(parent._trace, parent.span_id, name, tags)


class Tracer:
    """Per-service trace collector: root spans, ring buffer,
    histograms, slow log.

    ``clock`` must be monotonic (it is only ever differenced); inject
    a fake for deterministic tests.  ``slow_threshold`` is in seconds
    (``None`` disables the slow log); ``trace_dir`` additionally
    appends each slow trace as one JSON line to
    ``<trace_dir>/TRACE_slow.jsonl``.
    """

    def __init__(self, enabled: bool = True, buffer_size: int = 256,
                 slow_threshold: float | None = None,
                 trace_dir=None, slow_keep: int = 64,
                 clock=time.monotonic):
        if buffer_size < 1:
            raise ValueError("buffer_size must be positive")
        if slow_keep < 1:
            raise ValueError("slow_keep must be positive")
        if slow_threshold is not None and slow_threshold < 0:
            raise ValueError("slow_threshold must be non-negative")
        self.enabled = enabled
        self.buffer_size = buffer_size
        self.slow_threshold = slow_threshold
        self.trace_dir = Path(trace_dir) if trace_dir else None
        self.clock = clock
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=buffer_size)
        self._slow: deque = deque(maxlen=slow_keep)
        #: ``(op, stage) -> [per-bucket counts, duration sum, count]``.
        self._hist: dict = {}
        self._trace_seq = 0
        self._completed = 0
        self._slow_total = 0
        self._dropped = 0
        self._export_errors = 0

    # ------------------------------------------------------------------
    # Producing traces
    # ------------------------------------------------------------------
    def root(self, op: str, trace_id: str | None = None,
             tenant: str | None = None, **tags):
        """Open the root span of a new trace (the server calls this
        once per request).  ``trace_id`` propagates a client-supplied
        id; otherwise a counter-based id is minted — deterministic
        across hash seeds by construction.  Returns the no-op span
        when tracing is disabled."""
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            self._trace_seq += 1
            seq = self._trace_seq
        tid = trace_id if trace_id else f"t{seq:08d}"
        trace = _Trace(self, tid, op, tenant)
        if tenant is not None:
            tags.setdefault("tenant", tenant)
        return Span(trace, None, op, tags)

    def _next_span_id(self, trace: _Trace) -> int:
        with self._lock:
            trace.span_seq += 1
            return trace.span_seq

    def _record(self, trace: _Trace, finished: Span) -> None:
        with self._lock:
            trace.records.append(finished)

    def _complete(self, trace: _Trace, root: Span) -> None:
        threshold = self.slow_threshold
        slow = threshold is not None and root.duration >= threshold
        with self._lock:
            payload = self._trace_payload(trace, root, slow)
            for finished in trace.records:
                stage = (TOTAL_STAGE if finished.parent_id is None
                         else finished.name)
                self._observe(trace.op, stage, finished.duration)
            if len(self._traces) == self._traces.maxlen:
                self._dropped += 1
            self._traces.append(payload)
            self._completed += 1
            if slow:
                self._slow.append(payload)
                self._slow_total += 1
        if slow and self.trace_dir is not None:
            self._export_slow(payload)

    @staticmethod
    def _trace_payload(trace: _Trace, root: Span, slow: bool) -> dict:
        """Caller holds ``self._lock`` (the records list is shared).
        Spans are ordered by start offset (span id breaks ties), so
        the JSON reads as a timeline regardless of finish order."""
        started = trace.started
        spans = sorted(trace.records,
                       key=lambda s: (s.start - started, s.span_id))
        return {
            "trace": trace.trace_id,
            "op": trace.op,
            "tenant": trace.tenant or "",
            "duration_ms": round(root.duration * 1000.0, 3),
            "slow": slow,
            "spans": [{
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "start_ms": round((s.start - started) * 1000.0, 3),
                "duration_ms": round(s.duration * 1000.0, 3),
                "tags": s.tags,
            } for s in spans],
        }

    def _observe(self, op: str, stage: str, duration: float) -> None:
        """Caller holds ``self._lock``."""
        entry = self._hist.get((op, stage))
        if entry is None:
            entry = [[0] * (len(BUCKETS) + 1), 0.0, 0]
            self._hist[(op, stage)] = entry
        counts, _, _ = entry
        for i, bound in enumerate(BUCKETS):
            if duration <= bound:
                counts[i] += 1
                break
        else:
            counts[len(BUCKETS)] += 1
        entry[1] += duration
        entry[2] += 1

    def _export_slow(self, payload: dict) -> None:
        line = json.dumps(payload, separators=(",", ":"),
                          sort_keys=True) + "\n"
        try:
            with open(self.trace_dir / SLOW_LOG_NAME, "a",
                      encoding="utf-8") as fh:
                fh.write(line)
        except OSError:
            with self._lock:
                self._export_errors += 1

    # ------------------------------------------------------------------
    # Reading traces back
    # ------------------------------------------------------------------
    @staticmethod
    def _visible(payload: dict, tenant: str | None) -> bool:
        return tenant is None or payload.get("tenant") == tenant

    def recent(self, limit: int = 16, tenant: str | None = None,
               slow: bool = False) -> list[dict]:
        """The newest completed (or slow) traces, newest first,
        optionally scoped to one tenant."""
        with self._lock:
            source = list(self._slow if slow else self._traces)
        out = [p for p in reversed(source) if self._visible(p, tenant)]
        return out[:limit]

    def find(self, trace_id: str,
             tenant: str | None = None) -> dict | None:
        """One buffered trace by id (ring buffer first, then the slow
        log), or ``None``."""
        with self._lock:
            buffered = list(self._traces) + list(self._slow)
        for payload in reversed(buffered):
            if payload.get("trace") == trace_id \
                    and self._visible(payload, tenant):
                return payload
        return None

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def histograms(self) -> dict:
        """``{op: {stage: {"count", "sum_ms", "buckets"}}}`` with
        *cumulative* bucket counts keyed by their ``le`` label — the
        exact shape ``render_metrics`` and ``repro ctl top`` consume.
        Everything is emitted in sorted order."""
        with self._lock:
            items = sorted((key, list(entry[0]), entry[1], entry[2])
                           for key, entry in self._hist.items())
        out: dict = {}
        for (op, stage), counts, total, count in items:
            cumulative, running = {}, 0
            for label, bucket in zip(BUCKET_LABELS, counts):
                running += bucket
                cumulative[label] = running
            out.setdefault(op, {})[stage] = {
                "count": count,
                "sum_ms": round(total * 1000.0, 3),
                "buckets": cumulative,
            }
        return out

    def stats(self) -> dict:
        """Scalar tracer state for the service ``stats`` payload."""
        threshold = self.slow_threshold
        with self._lock:
            return {
                "enabled": self.enabled,
                "buffer_size": self.buffer_size,
                "buffered": len(self._traces),
                "completed": self._completed,
                "slow": self._slow_total,
                "slow_threshold_ms": (None if threshold is None
                                      else round(threshold * 1000.0,
                                                 3)),
                "dropped": self._dropped,
                "export_errors": self._export_errors,
            }
