"""repro — a reproduction of Kenig & Suciu (PODS 2021),
"A Dichotomy for the Generalized Model Counting Problem for Unions of
Conjunctive Queries".

The public API re-exports the main objects:

* queries and static analysis: :class:`Clause`, :class:`Query`,
  ``is_safe`` / ``is_unsafe`` / ``query_length`` / ``query_type``,
  ``is_final`` / ``find_final``;
* tuple-independent databases and evaluation: :class:`TID`,
  ``lineage``, ``probability`` (exact WMC), ``probability_brute``,
  ``lifted_probability`` (PTIME, safe queries only);
* counting problems: ``pqe``, ``gfomc``, ``fomc``,
  ``generalized_model_count``, ``model_count``, :class:`P2CNF`,
  :class:`PP2CNF`;
* the hardness machinery: ``repro.reduction`` (blocks, small/big
  matrices, the Type-I Cook reduction, the zig-zag rewriting, and the
  Type-II lattice/Moebius apparatus);
* the circuit runtime: :class:`Circuit` / ``compile_cnf`` (d-DNNF
  compilation, batched sweeps, world sampling, versioned
  serialization), :class:`CircuitStore` / ``cnf_fingerprint``
  (content-addressed persistence), and ``set_circuit_store``
  (process-wide two-tier caching);
* budgeted approximation: ``compile_cnf(..., budget_nodes=...)`` /
  :class:`CompilationBudgetExceeded`, ``estimate_probability`` /
  :class:`ProbabilityEstimate` (Monte-Carlo with Hoeffding bounds),
  and ``cnf_probability_auto`` (exact under budget, else estimate);
* adaptive estimation: ``adaptive_estimate_probability``
  (empirical-Bernstein early stopping),
  ``importance_estimate_probability`` (self-normalized tilted
  sampling with relative-error targets), and :class:`BudgetPlanner`
  (per-formula compilation budgets from the observed circuit-size
  trajectory).
"""

from repro.core import (
    Clause,
    Query,
    is_safe,
    is_unsafe,
    query_length,
    query_type,
    is_final,
    find_final,
)
from repro.tid import (
    TID,
    lineage,
    probability,
    probability_brute,
    lifted_probability,
)
from repro.counting import (
    pqe,
    gfomc,
    fomc,
    generalized_model_count,
    model_count,
    P2CNF,
    PP2CNF,
)
from repro.booleans.circuit import (
    Circuit,
    CompilationBudgetExceeded,
    compile_cnf,
)
from repro.booleans.adaptive import (
    BudgetPlanner,
    adaptive_estimate_probability,
    importance_estimate_probability,
)
from repro.booleans.approximate import (
    ProbabilityEstimate,
    estimate_probability,
)
from repro.booleans.store import CircuitStore, cnf_fingerprint
from repro.tid.wmc import cnf_probability_auto, set_circuit_store
from repro.evaluation import (
    EvaluationResult,
    evaluate,
    evaluate_batch,
    probability_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "Clause",
    "Query",
    "is_safe",
    "is_unsafe",
    "query_length",
    "query_type",
    "is_final",
    "find_final",
    "TID",
    "lineage",
    "probability",
    "probability_brute",
    "lifted_probability",
    "pqe",
    "gfomc",
    "fomc",
    "generalized_model_count",
    "model_count",
    "P2CNF",
    "PP2CNF",
    "evaluate",
    "evaluate_batch",
    "probability_sweep",
    "EvaluationResult",
    "BudgetPlanner",
    "Circuit",
    "CircuitStore",
    "CompilationBudgetExceeded",
    "ProbabilityEstimate",
    "adaptive_estimate_probability",
    "cnf_fingerprint",
    "cnf_probability_auto",
    "estimate_probability",
    "importance_estimate_probability",
    "set_circuit_store",
    "compile_cnf",
    "__version__",
]
