"""Budgeted approximate weighted model counting.

Exact d-DNNF compilation (``repro.booleans.circuit``) is worst-case
exponential: adversarial lineages — dense random bipartite 2-CNFs, the
very formulas behind the paper's hardness reductions — blow past any
node budget.  This module supplies the standard fallback: Monte-Carlo
estimation of Pr(F) with a Hoeffding confidence interval.  Drawing one
world costs one pass over the variables and testing it one pass over
the clauses, so the estimator's cost is ``samples * |F|`` regardless of
how large the exact circuit would have been.

The pieces compose into the ``auto`` evaluation policy (wired up in
``repro.tid.wmc.cnf_probability_auto``): try exact compilation under
``compile_cnf(formula, budget_nodes=...)``, and when that raises
``CompilationBudgetExceeded``, answer with ``estimate_probability``
instead — every result records which engine produced it.

All randomness flows through a seeded ``random.Random`` and every
iteration order is pinned (sorted-repr variables, list-ordered
clauses), so estimates are bit-reproducible across processes and
``PYTHONHASHSEED`` values, like the rest of the codebase.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass
from fractions import Fraction

from repro.booleans.circuit import (
    CompilationBudgetExceeded,
    Weights,
    make_lookup,
)
from repro.booleans.cnf import CNF

__all__ = [
    "CompilationBudgetExceeded",
    "ProbabilityEstimate",
    "AutoProbability",
    "AutoSweep",
    "estimate_probability",
    "estimate_probability_batch",
    "hoeffding_sample_count",
]

ZERO = Fraction(0)
ONE = Fraction(1)

#: Default additive error bound and failure probability: Pr(F) is
#: reported within +/- EPSILON of the truth, except with probability
#: at most DELTA over the sampling randomness.
DEFAULT_EPSILON = Fraction(1, 20)
DEFAULT_DELTA = Fraction(1, 20)


def hoeffding_sample_count(epsilon, delta) -> int:
    """The sample count n = ceil(ln(2/delta) / (2 epsilon^2)).

    By Hoeffding's inequality, the mean of n i.i.d. {0,1} draws then
    deviates from its expectation by more than ``epsilon`` with
    probability at most ``delta``.
    """
    epsilon = Fraction(epsilon)
    delta = Fraction(delta)
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return max(1, math.ceil(
        math.log(2 / float(delta)) / (2 * float(epsilon) ** 2)))


@dataclass(frozen=True)
class ProbabilityEstimate:
    """A Monte-Carlo point estimate of Pr(F) with its confidence bound.

    For the fixed-n Hoeffding estimator ``estimate`` is the exact
    rational ``successes / samples``; the guarantee is
    ``Pr(|estimate - Pr(F)| > epsilon) <= delta`` over the sampling
    randomness.  ``low``/``high`` clamp the interval to [0, 1].

    The sequential estimators (``repro.booleans.adaptive``) reuse this
    type with extra provenance: ``method`` names the bound that
    produced the interval (``"hoeffding"``, ``"bernstein"``,
    ``"importance"``), ``epsilon`` is then the *achieved* additive
    half-width (never wider than the requested one),
    ``relative_error`` the achieved relative half-width when the
    interval stays away from 0, and ``samples_used`` the draws
    actually taken (early stopping makes it smaller than the
    worst-case Hoeffding count).  The self-normalized importance
    sampler's point estimate is variance-reduced and so may differ
    from the interval's unbiased ``center``; ``low``/``high`` follow
    the center, and the point estimate is always inside them.
    """

    estimate: Fraction
    epsilon: Fraction
    delta: Fraction
    samples: int
    successes: int
    method: str = "hoeffding"
    relative_error: Fraction | None = None
    samples_used: int | None = None
    center: Fraction | None = None

    @property
    def low(self) -> Fraction:
        center = self.estimate if self.center is None else self.center
        return max(ZERO, center - self.epsilon)

    @property
    def high(self) -> Fraction:
        center = self.estimate if self.center is None else self.center
        return min(ONE, center + self.epsilon)

    def contains(self, value) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.low <= value <= self.high

    def __float__(self) -> float:
        return float(self.estimate)

    def as_dict(self) -> dict:
        """A JSON-safe rendering: exact rationals as ``"num/den"``
        strings plus a float convenience field — the shape the service
        protocol and any other machine consumer of an estimate use.
        ``repro.service.protocol.decode_estimate`` is the inverse."""
        payload = {
            "estimate": str(self.estimate),
            "float": float(self.estimate),
            "epsilon": str(self.epsilon),
            "delta": str(self.delta),
            "low": str(self.low),
            "high": str(self.high),
            "samples": self.samples,
            "successes": self.successes,
            "method": self.method,
            "relative_error": (None if self.relative_error is None
                               else str(self.relative_error)),
            "samples_used": self.samples_used,
        }
        if self.center is not None:
            payload["center"] = str(self.center)
        return payload

    def __str__(self) -> str:
        return (f"{self.estimate} in [{self.low}, {self.high}] "
                f"({self.samples} samples, "
                f"confidence {ONE - Fraction(self.delta)})")


@dataclass(frozen=True)
class AutoProbability:
    """Pr(F) from the ``auto`` policy, recording which engine answered.

    ``engine`` is ``"exact"`` (compiled under budget; ``value`` is the
    true probability) or ``"estimate"`` (compilation exceeded the
    budget; ``value`` is ``estimate.estimate`` and carries its
    Hoeffding interval).
    """

    value: Fraction
    engine: str
    estimate: ProbabilityEstimate | None = None


@dataclass(frozen=True)
class AutoSweep:
    """Many-weight-vector analogue of ``AutoProbability``: the values
    of a sweep plus the engine that produced them (``estimates`` is
    per-vector when the estimator answered, else None)."""

    values: list
    engine: str
    estimates: list | None = None


def estimate_probability(formula: CNF, weights: Weights = None,
                         epsilon=DEFAULT_EPSILON,
                         delta=DEFAULT_DELTA,
                         rng: random.Random | int | None = None,
                         default: Fraction | None = None
                         ) -> ProbabilityEstimate:
    """Monte-Carlo Pr(F) with an additive Hoeffding guarantee.

    Draws ``hoeffding_sample_count(epsilon, delta)`` independent worlds
    from the product distribution given by ``weights`` (missing
    variables fall back to ``default``, 1/2 when unspecified — the same
    convention as ``cnf_probability``) and reports the satisfaction
    frequency.  Each draw is compared against the exact rational
    marginal, so the sampled distribution is the weight vector itself,
    not a float rounding of it.

    ``rng`` is a ``random.Random``, an int seed, or None (seed 0);
    fixed seeds make the estimate fully reproducible.
    """
    epsilon = Fraction(epsilon)
    delta = Fraction(delta)
    samples = hoeffding_sample_count(epsilon, delta)
    if not isinstance(rng, random.Random):
        rng = random.Random(0 if rng is None else rng)
    lookup = make_lookup(weights, default)
    variables = sorted(formula.variables(), key=repr)
    index = {var: i for i, var in enumerate(variables)}
    marginals = [Fraction(lookup(var)) for var in variables]
    clauses = sorted(
        (sorted((index[var] for var in clause))
         for clause in formula.clauses),
        key=lambda c: (len(c), c))
    successes = 0
    for _ in range(samples):
        world = [rng.random() < p for p in marginals]
        if all(any(world[i] for i in clause) for clause in clauses):
            successes += 1
    return ProbabilityEstimate(
        estimate=Fraction(successes, samples),
        epsilon=epsilon, delta=delta,
        samples=samples, successes=successes)


def estimate_probability_batch(formula: CNF, weight_specs,
                               epsilon=DEFAULT_EPSILON,
                               delta=DEFAULT_DELTA,
                               rng: random.Random | int | None = None,
                               default: Fraction | None = None
                               ) -> list[ProbabilityEstimate]:
    """One (epsilon, delta) estimate per weight specification.

    The estimator re-samples per vector, so each entry carries its own
    independent Hoeffding guarantee; a single shared ``rng`` (seeded
    once here) keeps the whole sweep reproducible.  This is the
    degraded half of ``repro.tid.wmc.probability_batch_auto`` and of
    the budgeted CLI sweep.
    """
    if not isinstance(rng, random.Random):
        rng = random.Random(0 if rng is None else rng)
    return [estimate_probability(formula, spec, epsilon, delta, rng,
                                 default)
            for spec in weight_specs]
