"""Connectivity of monotone Boolean formulas (Definition B.2).

For monotone CNFs, connectedness is a graph property on the canonical
clause set: clauses are nodes, and clauses sharing a variable are
adjacent.  A formula is *connected* when that graph has a single
component (ignoring the trivial formulas).  ``F`` *disconnects* variable
sets ``U, V`` when no component touches both, and a Boolean variable
``X`` disconnects ``U, V`` when both cofactors ``F[X:=0]`` and
``F[X:=1]`` do.  These notions drive Lemma 1.2 (small-matrix
singularity), Lemma 3.15, and the migrating-variable analysis of
Appendix B/C.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.booleans.cnf import CNF


def clause_components(formula: CNF) -> list[frozenset[frozenset]]:
    """Partition the clause set into variable-sharing components."""
    clauses = [c for c in formula.clauses if c]
    var_to_clauses: dict[object, list[int]] = {}
    for idx, clause in enumerate(clauses):
        for var in clause:
            var_to_clauses.setdefault(var, []).append(idx)
    seen: set[int] = set()
    components: list[frozenset[frozenset]] = []
    for start in range(len(clauses)):
        if start in seen:
            continue
        queue = deque([start])
        seen.add(start)
        group = []
        while queue:
            idx = queue.popleft()
            group.append(clauses[idx])
            for var in clauses[idx]:
                for nxt in var_to_clauses[var]:
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
        components.append(frozenset(group))
    return components


def components(formula: CNF) -> list[CNF]:
    """The formula split into independent (variable-disjoint) conjuncts."""
    # Each group is a subset of a minimized clause set, hence minimal.
    return [CNF._from_minimized(group)
            for group in clause_components(formula)]


def is_connected(formula: CNF) -> bool:
    """True when F does not decompose into two variable-disjoint,
    non-constant conjuncts (Definition B.2)."""
    if formula.is_true() or formula.is_false():
        return True
    return len(clause_components(formula)) <= 1


def disconnects(formula: CNF, left: Iterable, right: Iterable) -> bool:
    """Does F = F1 & F2 with disjoint variables separate ``left`` from
    ``right`` (right absent from F1, left absent from F2)?"""
    left = frozenset(left)
    right = frozenset(right)
    if formula.is_false():
        return True
    for group in clause_components(formula):
        group_vars = frozenset(v for clause in group for v in clause)
        if group_vars & left and group_vars & right:
            return False
    return True


def variable_disconnects(formula: CNF, var, left: Iterable,
                         right: Iterable) -> bool:
    """A Boolean variable X disconnects U, V iff both cofactors do."""
    return (disconnects(formula.condition(var, False), left, right)
            and disconnects(formula.condition(var, True), left, right))


def clause_distance(formula: CNF, left: Iterable, right: Iterable) -> int | None:
    """The minimum k such that clauses C0, ..., Ck connect ``left`` to
    ``right`` with consecutive clauses sharing a variable (Appendix B).

    Returns None when no such path exists (the sets are disconnected).
    """
    left = frozenset(left)
    right = frozenset(right)
    clauses = [c for c in formula.clauses if c]
    var_to_clauses: dict[object, list[int]] = {}
    for idx, clause in enumerate(clauses):
        for var in clause:
            var_to_clauses.setdefault(var, []).append(idx)
    starts = [i for i, c in enumerate(clauses) if c & left]
    dist = {i: 0 for i in starts}
    queue = deque(starts)
    while queue:
        idx = queue.popleft()
        if clauses[idx] & right:
            return dist[idx]
        for var in clauses[idx]:
            for nxt in var_to_clauses[var]:
                if nxt not in dist:
                    dist[nxt] = dist[idx] + 1
                    queue.append(nxt)
    return None


def ball(formula: CNF, center: Iterable, radius: int) -> frozenset:
    """B(U, m) = the set of variables at clause-distance <= radius from U
    (Appendix B)."""
    center = frozenset(center)
    result = set()
    for var in formula.variables():
        d = clause_distance(formula, center, {var})
        if d is not None and d <= radius:
            result.add(var)
    return frozenset(result)
