"""Knowledge compilation: monotone CNFs as d-DNNF arithmetic circuits.

The reductions evaluate the *same* lineage CNF under *many* weight
vectors: the block-matrix entries of Eq. 20 sweep the endpoint
probabilities over {0, 1}^2, the Type-II pipelines sweep consistent
theta-assignments, and the Vandermonde interpolation sweeps a grid of
probability points — all over one fixed formula.  The weighted model
counter in ``repro.tid.wmc`` restarts its exponential search on every
call; this module instead records that search *once* as a circuit and
replays it in time linear in the circuit size per weight vector.

A circuit is a DAG of hash-consed nodes:

* ``("true",)`` / ``("false",)`` — constants;
* ``("leaf", var)``              — the positive literal ``var``;
* ``("and", children)``          — a *decomposable* conjunction: the
  children mention pairwise disjoint variable sets, so probabilities
  multiply;
* ``("ite", var, hi, lo)``       — a Shannon decision
  (var AND hi) OR (NOT var AND lo): *deterministic* because the two
  disjuncts are mutually exclusive on ``var``, so probabilities add.

Decomposability + determinism make the circuit a d-DNNF: weighted model
counts, unweighted model counts, and all first-order marginals fall out
of single forward/backward passes.  The compiler mirrors the trace of
the WMC engine — unit-clause conditioning, independent-component
factorization via ``clause_components``, Shannon expansion on a
most-shared variable — but keeps the trace instead of collapsing it to
one number.

Two runtime features round the IR out into a reusable artifact:

* ``Circuit.probability_batch`` evaluates *many* weight vectors in one
  node-ordered pass (the grids of Eq. 20, theta-sweeps, interpolation
  points), with an optional float fast path for approximate sweeps;
* ``Circuit.to_bytes`` / ``Circuit.from_bytes`` give a versioned,
  exactly round-tripping serialization, the unit of persistence for the
  content-addressed store in ``repro.booleans.store``.
"""

from __future__ import annotations

import heapq
import json
import math
import random

from fractions import Fraction
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.booleans.cnf import CNF
from repro.booleans.connectivity import clause_components

ZERO = Fraction(0)
ONE = Fraction(1)
HALF = Fraction(1, 2)

#: Node kind tags (index 0 of every node tuple).
TRUE, FALSE, LEAF, AND, ITE = "true", "false", "leaf", "and", "ite"

#: Serialization format name / version (``Circuit.to_bytes``).
FORMAT_NAME = "repro-ddnnf"
FORMAT_VERSION = 1


class UnsupportedVersionError(ValueError):
    """A well-formed circuit payload written by a different format
    version — distinguishable from corruption so shared stores are not
    destructively 'repaired' across version skew."""


class CompilationBudgetExceeded(RuntimeError):
    """``compile_cnf`` interned more nodes than its ``budget_nodes``.

    Exact d-DNNF compilation is worst-case exponential; callers that
    cannot afford an open-ended search set a budget and treat this
    exception as the signal to degrade to approximate counting
    (``repro.booleans.approximate.estimate_probability``)."""

    def __init__(self, budget_nodes: int):
        super().__init__(
            f"d-DNNF compilation exceeded the budget of "
            f"{budget_nodes} interned nodes")
        self.budget_nodes = budget_nodes

Weights = Mapping | Callable[[Hashable], Fraction] | None


def encode_token(token) -> list:
    """A JSON-safe, type-tagged encoding of a variable token.

    Tokens in this codebase are strings, ints, bools, None, or nested
    tuples thereof (ground-tuple tokens like ``('S1', 'u', 'v')``); the
    tags keep the round trip exact — ``decode_token(encode_token(t))``
    returns an *equal* token, never a list-for-tuple lookalike.
    """
    if token is None:
        return ["z"]
    if isinstance(token, bool):  # before int: bool is an int subclass
        return ["b", token]
    if isinstance(token, int):
        return ["i", token]
    if isinstance(token, str):
        return ["s", token]
    if isinstance(token, tuple):
        return ["t", [encode_token(part) for part in token]]
    raise TypeError(
        f"cannot serialize variable token {token!r} of type "
        f"{type(token).__name__}; supported: str, int, bool, None, "
        f"and tuples thereof")


def decode_token(obj):
    """Inverse of ``encode_token``."""
    tag = obj[0]
    if tag == "z":
        return None
    if tag == "b":
        return bool(obj[1])
    if tag == "i":
        return int(obj[1])
    if tag == "s":
        return str(obj[1])
    if tag == "t":
        return tuple(decode_token(part) for part in obj[1])
    raise ValueError(f"unknown token tag {tag!r}")


def make_lookup(weights: Weights = None,
                default: Fraction | None = None) -> Callable:
    """Normalize a weight specification into ``var -> Fraction``.

    ``weights`` may be a mapping, a callable, or None; variables missing
    from a mapping fall back to ``default`` (1/2 when unspecified) —
    the same convention as ``repro.tid.wmc.cnf_probability``.
    """
    if callable(weights):
        return weights
    table = dict(weights or {})
    fallback = HALF if default is None else Fraction(default)
    return lambda v: table.get(v, fallback)


class WeightOverlay:
    """A weight spec "shared base with a few per-variable replacements".

    Sweep lanes overwhelmingly have this shape — one base weighting
    (the block marginals) plus a handful of pinned variables per lane
    (theta-tuples, endpoints).  Spelling a lane this way keeps the
    semantics of an ordinary spec (``WeightOverlay`` is callable, so
    ``make_lookup`` and the node interpreter treat it like any other
    lookup) while letting the tape engine fill its weight matrix from
    one base column plus the overrides — O(slots + overrides) weight
    probes per batch instead of O(slots x lanes).
    """

    __slots__ = ("base", "pinned", "_lookup")

    def __init__(self, base: Weights = None, pinned=None):
        self.base = base
        self.pinned = dict(pinned or {})
        self._lookup = None

    def __call__(self, var):
        inner = self._lookup
        if inner is None:
            inner = self._lookup = make_lookup(self.base)
        pinned = self.pinned
        return pinned[var] if var in pinned else inner(var)


def _require_finite(values, var) -> None:
    """Reject NaN/inf weights in float batches: a single poisoned lane
    would otherwise defeat the uniform-lane fast path silently (NaN
    compares unequal to everything, so every row widens) and propagate
    garbage into all downstream products."""
    for lane, value in enumerate(values):
        if not math.isfinite(value):
            raise ValueError(
                f"non-finite weight {value!r} for variable {var!r} in "
                f"float lane {lane}; float sweeps require finite "
                f"weights (use numeric='exact' for symbolic inputs)")


#: ``branch_variable`` scores at most this many most-shared candidates
#: with the separator heuristic; the scan is linear in the formula per
#: candidate, so the cap bounds pivot selection at a small constant
#: multiple of the old most-shared rule.
_SEPARATOR_CANDIDATES = 6


def _separation(formula: CNF, var) -> int:
    """The number of connected components of the clause graph once
    ``var`` is deleted from every clause.

    Both Shannon cofactors on ``var`` erase it from the residual
    formula, so this lower-bounds how many independent factors
    ``clause_components`` finds in *each* branch: a separator variable
    (count > 1) lets the compiler recurse on strictly smaller pieces
    instead of one interleaved formula.
    """
    reduced = [clause - {var} for clause in formula.clauses]
    reduced = [clause for clause in reduced if clause]
    if len(reduced) <= 1:
        return len(reduced)
    incidence: dict[object, list[int]] = {}
    for i, clause in enumerate(reduced):
        for v in clause:
            incidence.setdefault(v, []).append(i)
    seen = [False] * len(reduced)
    components = 0
    for start in range(len(reduced)):
        if seen[start]:
            continue
        components += 1
        stack = [start]
        seen[start] = True
        while stack:
            i = stack.pop()
            for v in reduced[i]:
                for j in incidence[v]:
                    if not seen[j]:
                        seen[j] = True
                        stack.append(j)
    return components


def branch_variable(formula: CNF):
    """The Shannon-expansion pivot: a cutset/separator variable when
    one exists, else a most-shared variable.

    The top ``_SEPARATOR_CANDIDATES`` most-shared variables are scored
    by how many clause components remain after deleting the variable
    (``_separation``); conditioning on a separator factors both
    cofactors into independent pieces, which hash-consing then shares —
    smaller circuits before they are ever evaluated or taped.  All ties
    break deterministically on the token's repr, preserving the
    byte-identical-across-hash-seeds serialization contract.
    """
    counts: dict[object, int] = {}
    for clause in formula.clauses:
        for var in clause:
            counts[var] = counts.get(var, 0) + 1
    if len(counts) <= 2 or len(formula.clauses) < 3:
        return max(counts, key=lambda v: (counts[v], repr(v)))
    candidates = sorted(counts, key=lambda v: (-counts[v], repr(v)))
    candidates = candidates[:_SEPARATOR_CANDIDATES]
    return max(candidates,
               key=lambda v: (_separation(formula, v), counts[v],
                              repr(v)))


class Circuit:
    """An immutable d-DNNF arithmetic circuit.

    ``nodes`` is topologically ordered (children strictly before
    parents), so every query below is a single linear pass.
    """

    __slots__ = ("nodes", "root", "_variables", "_tape")

    def __init__(self, nodes: tuple, root: int):
        self.nodes = nodes
        self.root = root
        self._variables: frozenset | None = None
        # Lazily attached by repro.booleans.tape.tape_for_circuit so
        # the flattened form shares the circuit's cache lifetime.
        self._tape = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        total = 0
        for node in self.nodes:
            if node[0] is AND:
                total += len(node[1])
            elif node[0] is ITE:
                total += 2
        return total

    def variables(self) -> frozenset:
        if self._variables is None:
            self._variables = frozenset(
                node[1] for node in self.nodes if node[0] in (LEAF, ITE))
        return self._variables

    def node_counts(self) -> dict[str, int]:
        counts = {TRUE: 0, FALSE: 0, LEAF: 0, AND: 0, ITE: 0}
        for node in self.nodes:
            counts[node[0]] += 1
        return counts

    def depth(self) -> int:
        """Longest root-to-leaf path (0 for a constant circuit)."""
        depths = [0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            if node[0] is AND:
                depths[i] = 1 + max(depths[c] for c in node[1])
            elif node[0] is ITE:
                depths[i] = 1 + max(depths[node[2]], depths[node[3]])
        return depths[self.root]

    def stats(self) -> dict:
        """Summary statistics (the ``repro compile`` CLI report)."""
        counts = self.node_counts()
        return {
            "size": self.size,
            "edges": self.edge_count,
            "depth": self.depth(),
            "variables": len(self.variables()),
            "decision_nodes": counts[ITE],
            "product_nodes": counts[AND],
            "leaf_nodes": counts[LEAF],
        }

    # ------------------------------------------------------------------
    # Linear-time queries
    # ------------------------------------------------------------------
    def probability(self, weights: Weights = None,
                    default: Fraction | None = None) -> Fraction:
        """Pr(F) under independent variables — one forward pass."""
        return self._forward(make_lookup(weights, default))[self.root]

    def _forward(self, lookup) -> list[Fraction]:
        vals: list[Fraction] = [ZERO] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            kind = node[0]
            if kind is ITE:
                p = Fraction(lookup(node[1]))
                vals[i] = p * vals[node[2]] + (ONE - p) * vals[node[3]]
            elif kind is AND:
                acc = ONE
                for child in node[1]:
                    acc *= vals[child]
                    if not acc:
                        break
                vals[i] = acc
            elif kind is LEAF:
                vals[i] = Fraction(lookup(node[1]))
            elif kind is TRUE:
                vals[i] = ONE
        return vals

    def probability_batch(self, weight_specs: Sequence[Weights],
                          default: Fraction | None = None,
                          numeric: str = "exact",
                          engine: str = "auto") -> list:
        """Pr(F) under many weight vectors in one node-ordered pass.

        ``weight_specs`` is a sequence of weight specifications (each a
        mapping, a callable, or None, as in ``probability``); the result
        is ``[Pr(F; w) for w in weight_specs]`` but the circuit is
        walked *once*, keeping a row of k running values per node — the
        memory-friendly layout for the reduction grids (Eq. 20
        endpoint sweeps, theta-sweeps, interpolation points).

        ``numeric="exact"`` (the default) computes in ``Fraction``s and
        is bit-identical to k separate ``probability`` calls;
        ``numeric="float"`` runs the same pass in hardware floats —
        callers wanting guardrails should cross-check a sample against
        the exact path (``repro.evaluation.probability_sweep`` does).
        Non-finite float weights (NaN/inf) raise ``ValueError`` naming
        the offending lane instead of silently poisoning the batch.

        ``engine`` selects the evaluator: ``"node"`` walks this node
        table with the uniform-lane optimization below; ``"tape"``
        flattens the circuit once into a ``repro.booleans.tape.Tape``
        and runs its vectorized kernels; ``"auto"`` (the default) uses
        the tape for float batches — where the lane kernel dominates —
        and the node walk for exact ones.

        Sweeps typically vary a handful of variables (endpoints,
        theta-tuples) and hold the rest fixed, so each node value is
        kept as a single scalar while it is *uniform* across the batch
        and only widens to a per-lane row where lanes actually diverge
        — the arithmetic then scales with k only on the swept part of
        the circuit, which is why batching beats k separate passes.
        """
        if numeric == "exact":
            to_num, one, zero = Fraction, ONE, ZERO
        elif numeric == "float":
            to_num, one, zero = float, 1.0, 0.0
        else:
            raise ValueError(
                f"numeric must be 'exact' or 'float', got {numeric!r}")
        if engine not in ("auto", "node", "tape"):
            raise ValueError(
                f"engine must be 'auto', 'node', or 'tape', "
                f"got {engine!r}")
        if engine == "auto":
            engine = "tape" if numeric == "float" else "node"
        weight_specs = list(weight_specs)
        k = len(weight_specs)
        if k == 0:
            return []
        if engine == "tape":
            # Imported lazily: tape flattens circuits, so the module
            # depends on this one.  The tape takes the raw specs — it
            # probes mappings directly instead of paying a closure
            # call per (variable, lane).
            from repro.booleans.tape import tape_for_circuit
            return tape_for_circuit(self).evaluate(
                weight_specs, numeric, default=default)
        lookups = [make_lookup(spec, default) for spec in weight_specs]
        guard = _require_finite if to_num is float else None
        # rows[i] is a scalar when node i's value is uniform across all
        # k lanes, else a length-k list.
        rows: list = [None] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            kind = node[0]
            if kind is ITE:
                var = node[1]
                ps = [to_num(lookup(var)) for lookup in lookups]
                if guard is not None:
                    guard(ps, var)
                uniform_p = all(p == ps[0] for p in ps)
                hi, lo = rows[node[2]], rows[node[3]]
                hi_wide = isinstance(hi, list)
                lo_wide = isinstance(lo, list)
                if uniform_p and not hi_wide and not lo_wide:
                    p = ps[0]
                    rows[i] = p * hi + (one - p) * lo
                else:
                    his = hi if hi_wide else (hi,) * k
                    los = lo if lo_wide else (lo,) * k
                    rows[i] = [ps[j] * his[j] + (one - ps[j]) * los[j]
                               for j in range(k)]
            elif kind is AND:
                scalar = one
                wide: list = []
                for child in node[1]:
                    crow = rows[child]
                    if isinstance(crow, list):
                        wide.append(crow)
                    else:
                        scalar *= crow
                        if not scalar:
                            break
                if not scalar or not wide:
                    rows[i] = scalar
                else:
                    row = [scalar * x for x in wide[0]]
                    for crow in wide[1:]:
                        for j in range(k):
                            row[j] *= crow[j]
                    rows[i] = row
            elif kind is LEAF:
                var = node[1]
                ps = [to_num(lookup(var)) for lookup in lookups]
                if guard is not None:
                    guard(ps, var)
                rows[i] = ps[0] if all(p == ps[0] for p in ps) else ps
            elif kind is TRUE:
                rows[i] = one
            else:
                rows[i] = zero
        root = rows[self.root]
        return list(root) if isinstance(root, list) else [root] * k

    def model_count(self, scope: Iterable | None = None) -> int:
        """The number of satisfying assignments over ``scope``.

        ``scope`` must contain every circuit variable (default: exactly
        the circuit variables); variables in ``scope`` that the formula
        does not mention are free and double the count.
        """
        variables = self.variables()
        scope = variables if scope is None else frozenset(scope)
        if not variables <= scope:
            missing = sorted(variables - scope, key=repr)
            raise ValueError(f"scope is missing circuit variables: "
                             f"{missing[:5]}")
        # Pr at the uniform weighting 1/2 is (#models / 2^|scope|),
        # exactly, because every node value is an exact Fraction.
        count = self.probability(lambda v: HALF) * (1 << len(scope))
        if count.denominator != 1:  # pragma: no cover - d-DNNF invariant
            raise AssertionError(f"non-integral model count: {count}")
        return int(count)

    def marginals(self, weights: Weights = None,
                  default: Fraction | None = None) -> dict:
        """All partial derivatives d Pr(F) / d p(var) — one forward plus
        one backward pass (Darwiche's differential semantics).

        Since Pr is multilinear, the marginal of ``var`` also equals
        Pr(F[var:=1]) - Pr(F[var:=0]) at the remaining weights.
        """
        lookup = make_lookup(weights, default)
        vals = self._forward(lookup)
        derivs: list[Fraction] = [ZERO] * len(self.nodes)
        derivs[self.root] = ONE
        grads: dict = {v: ZERO for v in self.variables()}
        for i in range(len(self.nodes) - 1, -1, -1):
            d = derivs[i]
            if not d:
                continue
            node = self.nodes[i]
            kind = node[0]
            if kind is ITE:
                p = Fraction(lookup(node[1]))
                derivs[node[2]] += p * d
                derivs[node[3]] += (ONE - p) * d
                grads[node[1]] += (vals[node[2]] - vals[node[3]]) * d
            elif kind is AND:
                children = node[1]
                # Prefix/suffix products keep the pass linear even when
                # several child values are zero.
                n = len(children)
                prefix = [ONE] * (n + 1)
                for j, child in enumerate(children):
                    prefix[j + 1] = prefix[j] * vals[child]
                suffix = ONE
                for j in range(n - 1, -1, -1):
                    child = children[j]
                    derivs[child] += d * prefix[j] * suffix
                    suffix *= vals[child]
            elif kind is LEAF:
                grads[node[1]] += d
        return grads

    # ------------------------------------------------------------------
    # World sampling and top-k enumeration (top-down passes)
    # ------------------------------------------------------------------
    def sample(self, weights: Weights = None, k: int = 1,
               rng: random.Random | int | None = None,
               default: Fraction | None = None) -> list[dict]:
        """k exact samples from Pr(world | F) — the distribution of the
        independent variables conditioned on the formula being true.

        One forward pass computes every node's probability; each sample
        is then a top-down walk: at a decision node the true-branch is
        taken with its exact posterior odds (determinism makes the two
        branches disjoint events), a product node descends into all
        children (decomposability makes them independent), and
        variables the walk never constrains are drawn from their prior
        marginals.  Each returned world is a ``{var: bool}`` dict over
        all circuit variables and satisfies the formula.

        ``rng`` is a ``random.Random``, an int seed, or None (seed 0);
        results are reproducible across processes and hash seeds —
        the walk order is the node table's, and the free-variable
        fill-in iterates in sorted-repr order.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        lookup = make_lookup(weights, default)
        vals = self._forward(lookup)
        total = vals[self.root]
        if total == 0:
            raise ValueError(
                "cannot sample: the formula has probability 0 under "
                "these weights")
        if not isinstance(rng, random.Random):
            rng = random.Random(0 if rng is None else rng)
        # Posterior branch thresholds and prior marginals depend only
        # on the weights, not the sample — hoist the exact-Fraction
        # arithmetic out of the per-sample loop.
        thresholds: list = [None] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            if node[0] is ITE:
                p = Fraction(lookup(node[1]))
                hi_mass = p * vals[node[2]]
                mass = hi_mass + (ONE - p) * vals[node[3]]
                if mass:  # zero-mass nodes are never visited below
                    thresholds[i] = hi_mass / mass
        priors = [(var, Fraction(lookup(var)))
                  for var in sorted(self.variables(), key=repr)]
        worlds = []
        for _ in range(k):
            world: dict = {}
            stack = [self.root]
            while stack:
                i = stack.pop()
                node = self.nodes[i]
                kind = node[0]
                if kind is ITE:
                    # float < Fraction compares exactly in Python, and
                    # random() < 1 always holds, so a branch of
                    # posterior mass 0 (or 1) is never (always) taken.
                    if rng.random() < thresholds[i]:
                        world[node[1]] = True
                        stack.append(node[2])
                    else:
                        world[node[1]] = False
                        stack.append(node[3])
                elif kind is AND:
                    stack.extend(node[1])
                elif kind is LEAF:
                    world[node[1]] = True
            for var, prior in priors:
                if var not in world:
                    world[var] = rng.random() < prior
            worlds.append(world)
        return worlds

    def top_k_worlds(self, weights: Weights = None, k: int = 1,
                     default: Fraction | None = None) -> list[tuple]:
        """The k most probable satisfying worlds, as ``(probability,
        world)`` pairs sorted by descending probability.

        A bottom-up k-best pass: every node carries the k best partial
        worlds over its *mentioned* variables; product nodes combine
        children by a lazy best-first merge (their variable sets are
        disjoint), decision nodes smooth each branch over the variables
        only the other branch mentions before merging (determinism
        keeps the merged worlds distinct).  Worlds of probability 0 are
        excluded, so fewer than k pairs may return.  Ties are broken on
        the world's sorted repr, keeping the order reproducible across
        hash seeds.
        """
        if k <= 0:
            return []
        lookup = make_lookup(weights, default)
        scopes: list[frozenset] = [frozenset()] * len(self.nodes)
        best: list[list] = [[] for _ in self.nodes]
        for i, node in enumerate(self.nodes):
            kind = node[0]
            if kind is ITE:
                var, hi, lo = node[1], node[2], node[3]
                p = Fraction(lookup(var))
                scopes[i] = scopes[hi] | scopes[lo] | {var}
                hi_side = _kbest_scale(best[hi], p, var, True)
                hi_side = _kbest_smooth(
                    hi_side, scopes[lo] - scopes[hi], lookup, k)
                lo_side = _kbest_scale(best[lo], ONE - p, var, False)
                lo_side = _kbest_smooth(
                    lo_side, scopes[hi] - scopes[lo], lookup, k)
                best[i] = _kbest_top(hi_side + lo_side, k)
            elif kind is AND:
                scope = frozenset()
                acc = [(ONE, ())]
                for child in node[1]:
                    scope |= scopes[child]
                    acc = _kbest_product(acc, best[child], k)
                    if not acc:
                        break
                scopes[i] = scope
                best[i] = acc
            elif kind is LEAF:
                scopes[i] = frozenset((node[1],))
                w = Fraction(lookup(node[1]))
                best[i] = [(w, ((node[1], True),))] if w else []
            elif kind is TRUE:
                best[i] = [(ONE, ())]
        worlds = _kbest_smooth(
            best[self.root],
            self.variables() - scopes[self.root], lookup, k)
        return [(prob, dict(assignment))
                for prob, assignment in _kbest_top(worlds, k)]

    # ------------------------------------------------------------------
    # Serialization (versioned, exact round trip)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """A compact, versioned JSON-lines serialization.

        Line 1 is a header (format name, version, root, node count, and
        the interned variable table); each subsequent line is one node
        in topological order.  ``from_bytes`` reconstructs a circuit
        whose node table is *identical*, so every query — probability,
        model count, marginals — returns bit-identical ``Fraction``s.
        """
        var_ids: dict = {}
        var_table: list = []
        entries: list = []
        for node in self.nodes:
            kind = node[0]
            if kind is ITE or kind is LEAF:
                var = node[1]
                # Intern on the *encoded* token, not the token itself:
                # hash-equal tokens of different types (True vs 1, also
                # nested inside tuples) would collapse in a plain dict
                # and defeat the type-tagged codec's exact round trip.
                encoded = encode_token(var)
                key = json.dumps(encoded, separators=(",", ":"))
                vid = var_ids.get(key)
                if vid is None:
                    vid = var_ids[key] = len(var_table)
                    var_table.append(encoded)
                if kind is ITE:
                    entries.append(["ite", vid, node[2], node[3]])
                else:
                    entries.append(["leaf", vid])
            elif kind is AND:
                entries.append(["and", list(node[1])])
            elif kind is TRUE:
                entries.append(["true"])
            else:
                entries.append(["false"])
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "root": self.root,
            "nodes": len(entries),
            "variables": var_table,
        }
        lines = [json.dumps(header, separators=(",", ":"),
                            sort_keys=True)]
        lines.extend(
            json.dumps(entry, separators=(",", ":")) for entry in entries)
        return ("\n".join(lines) + "\n").encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Circuit":
        """Reconstruct a circuit serialized by ``to_bytes``.

        Validates the header, the topological order (children strictly
        before parents), and the root index; raises ``ValueError`` on
        any malformed payload so callers (the disk store) can treat
        corruption as a cache miss — wrong-version payloads raise the
        ``UnsupportedVersionError`` subclass so they can be told apart
        from corruption.
        """
        try:
            lines = data.decode("utf-8").splitlines()
            header = json.loads(lines[0])
        except (UnicodeDecodeError, json.JSONDecodeError, IndexError) as e:
            raise ValueError(f"not a serialized circuit: {e}") from None
        if not isinstance(header, dict) or \
                header.get("format") != FORMAT_NAME:
            raise ValueError("not a serialized circuit: bad header")
        if header.get("version") != FORMAT_VERSION:
            raise UnsupportedVersionError(
                f"unsupported circuit format version "
                f"{header.get('version')!r} (this build reads "
                f"{FORMAT_VERSION})")
        count = header.get("nodes")
        body = lines[1:]
        if count != len(body):
            raise ValueError(
                f"truncated circuit: header says {count} nodes, "
                f"found {len(body)}")
        try:
            variables = [decode_token(obj)
                         for obj in header["variables"]]
        except (KeyError, IndexError, TypeError, ValueError) as e:
            raise ValueError(f"corrupt variable table: {e}") from None
        nodes: list[tuple] = []
        for i, line in enumerate(body):
            # Any malformed line — bad JSON, wrong arity, out-of-range
            # variable ids — must surface as ValueError, never leak a
            # KeyError/IndexError/TypeError past the store's
            # corruption-as-miss handling.
            try:
                entry = json.loads(line)
                kind = entry[0]
                if kind == ITE:
                    _, vid, hi, lo = entry
                    if not (isinstance(hi, int) and
                            isinstance(lo, int) and
                            0 <= hi < i and 0 <= lo < i):
                        raise ValueError("children out of "
                                         "topological order")
                    if not isinstance(vid, int) or \
                            not 0 <= vid < len(variables):
                        raise ValueError(f"variable id {vid!r} "
                                         f"out of range")
                    nodes.append((ITE, variables[vid], hi, lo))
                elif kind == AND:
                    children = entry[1]
                    if not all(isinstance(c, int) and 0 <= c < i
                               for c in children):
                        raise ValueError("children out of "
                                         "topological order")
                    nodes.append((AND, tuple(children)))
                elif kind == LEAF:
                    vid = entry[1]
                    if not isinstance(vid, int) or \
                            not 0 <= vid < len(variables):
                        raise ValueError(f"variable id {vid!r} "
                                         f"out of range")
                    nodes.append((LEAF, variables[vid]))
                elif kind == TRUE:
                    nodes.append((TRUE,))
                elif kind == FALSE:
                    nodes.append((FALSE,))
                else:
                    raise ValueError(f"unknown kind {kind!r}")
            except (json.JSONDecodeError, KeyError, IndexError,
                    TypeError, ValueError) as e:
                raise ValueError(f"corrupt node line {i}: {e}") \
                    from None
        root = header.get("root")
        if not isinstance(root, int) or not 0 <= root < len(nodes):
            raise ValueError(f"root index {root!r} out of range")
        return cls(tuple(nodes), root)


# ----------------------------------------------------------------------
# k-best candidate lists (Circuit.top_k_worlds)
# ----------------------------------------------------------------------
# A candidate is ``(probability, assignment)`` with the assignment a
# tuple of (var, bool) pairs; lists are kept sorted by descending
# probability with ties broken on the world's sorted repr.

def _world_key(assignment) -> tuple:
    return tuple(sorted((repr(var), val) for var, val in assignment))


def _kbest_top(candidates: list, k: int) -> list:
    return sorted(
        candidates, key=lambda c: (-c[0], _world_key(c[1])))[:k]


def _kbest_scale(candidates: list, factor: Fraction, var, val) -> list:
    """Multiply each candidate by ``factor`` and bind ``var`` to
    ``val`` (order-preserving: ``factor`` is a constant)."""
    if not factor:
        return []
    return [(prob * factor, assignment + ((var, val),))
            for prob, assignment in candidates]


def _kbest_product(a: list, b: list, k: int) -> list:
    """Top-k pairwise products of two descending candidate lists over
    disjoint variable sets — a lazy best-first frontier walk, so only
    O(k) of the |a| x |b| grid is materialized."""
    if not a or not b:
        return []
    heap = [(-(a[0][0] * b[0][0]), 0, 0)]
    seen = {(0, 0)}
    out = []
    while heap and len(out) < k:
        _, i, j = heapq.heappop(heap)
        out.append((a[i][0] * b[j][0], a[i][1] + b[j][1]))
        for i2, j2 in ((i + 1, j), (i, j + 1)):
            if i2 < len(a) and j2 < len(b) and (i2, j2) not in seen:
                seen.add((i2, j2))
                heapq.heappush(heap, (-(a[i2][0] * b[j2][0]), i2, j2))
    return out


def _kbest_smooth(candidates: list, free_vars, lookup, k: int) -> list:
    """Extend candidates over variables they do not mention (each free
    variable contributes its two independent outcomes); worlds with a
    0-probability outcome are dropped."""
    for var in sorted(free_vars, key=repr):
        p = Fraction(lookup(var))
        options = []
        if p:
            options.append((p, ((var, True),)))
        if p != ONE:
            options.append((ONE - p, ((var, False),)))
        options = _kbest_top(options, 2)
        candidates = _kbest_product(candidates, options, k)
    return candidates


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class _Compiler:
    """Hash-consing compiler from minimized monotone CNFs to circuits."""

    def __init__(self, budget_nodes: int | None = None):
        if budget_nodes is not None and budget_nodes < 2:
            # The two constant nodes below always exist; a budget that
            # cannot even hold them is a caller error, not a blow-up.
            raise ValueError("budget_nodes must be at least 2")
        self.budget_nodes = budget_nodes
        self.nodes: list[tuple] = []
        self._intern_table: dict[tuple, int] = {}
        self.true_id = self._intern((TRUE,))
        self.false_id = self._intern((FALSE,))
        self._memo: dict[CNF, int] = {}

    def _intern(self, node: tuple) -> int:
        nid = self._intern_table.get(node)
        if nid is None:
            if self.budget_nodes is not None and \
                    len(self.nodes) >= self.budget_nodes:
                raise CompilationBudgetExceeded(self.budget_nodes)
            nid = len(self.nodes)
            self.nodes.append(node)
            self._intern_table[node] = nid
        return nid

    def leaf(self, var) -> int:
        return self._intern((LEAF, var))

    def conjoin(self, children: Iterable[int]) -> int:
        flat: set[int] = set()
        for child in children:
            if child == self.false_id:
                return self.false_id
            if child == self.true_id:
                continue
            node = self.nodes[child]
            if node[0] is AND:
                flat.update(node[1])
            else:
                flat.add(child)
        if not flat:
            return self.true_id
        if len(flat) == 1:
            # repro: allow[determinism] singleton set: order-free by construction
            return next(iter(flat))
        return self._intern((AND, tuple(sorted(flat))))

    def decide(self, var, hi: int, lo: int) -> int:
        if hi == lo:
            return hi
        return self._intern((ITE, var, hi, lo))

    # ------------------------------------------------------------------
    def compile(self, formula: CNF) -> int:
        if formula.is_true():
            return self.true_id
        if formula.is_false():
            return self.false_id
        hit = self._memo.get(formula)
        if hit is not None:
            return hit
        nid = self._compile_uncached(formula)
        self._memo[formula] = nid
        return nid

    def _compile_uncached(self, formula: CNF) -> int:
        # Unit clauses force their variable true: {X} & F == X & F[X:=1],
        # a decomposable product because conditioning removes X.  The
        # min-by-repr choice keeps compilation order-independent.
        units = [clause for clause in formula.clauses if len(clause) == 1]
        if units:
            var = min((next(iter(c)) for c in units), key=repr)
            return self.conjoin([
                self.leaf(var),
                self.compile(formula.condition(var, True))])

        groups = clause_components(formula)
        if len(groups) > 1:
            # Component order follows frozenset iteration, which varies
            # with PYTHONHASHSEED; sorting by each component's minimal
            # variable repr (components are variable-disjoint, so keys
            # are distinct) pins the traversal — and with it the node
            # numbering, making ``Circuit.to_bytes`` byte-identical
            # across runs and hash seeds.
            groups.sort(key=lambda g: min(repr(v) for c in g for v in c))
            return self.conjoin(
                self.compile(CNF._from_minimized(group))
                for group in groups)

        var = branch_variable(formula)
        hi = self.compile(formula.condition(var, True))
        lo = self.compile(formula.condition(var, False))
        return self.decide(var, hi, lo)


def compile_cnf(formula: CNF,
                budget_nodes: int | None = None) -> Circuit:
    """Compile a monotone CNF into a d-DNNF circuit.

    Compilation costs about one run of the recursive WMC engine; every
    subsequent ``Circuit.probability`` / ``model_count`` / ``marginals``
    call is linear in the circuit size.  Callers that expect to reuse
    circuits should go through ``repro.tid.wmc.compiled``, the
    module-level compilation cache.

    ``budget_nodes`` caps the interned-node count: once the compiler
    would intern one node past the budget it raises
    ``CompilationBudgetExceeded`` (abandoning the partial circuit), the
    signal for budgeted callers to degrade to approximate counting
    (``repro.booleans.approximate``).
    """
    compiler = _Compiler(budget_nodes)
    root = compiler.compile(formula)
    return Circuit(tuple(compiler.nodes), root)
