"""Knowledge compilation: monotone CNFs as d-DNNF arithmetic circuits.

The reductions evaluate the *same* lineage CNF under *many* weight
vectors: the block-matrix entries of Eq. 20 sweep the endpoint
probabilities over {0, 1}^2, the Type-II pipelines sweep consistent
theta-assignments, and the Vandermonde interpolation sweeps a grid of
probability points — all over one fixed formula.  The weighted model
counter in ``repro.tid.wmc`` restarts its exponential search on every
call; this module instead records that search *once* as a circuit and
replays it in time linear in the circuit size per weight vector.

A circuit is a DAG of hash-consed nodes:

* ``("true",)`` / ``("false",)`` — constants;
* ``("leaf", var)``              — the positive literal ``var``;
* ``("and", children)``          — a *decomposable* conjunction: the
  children mention pairwise disjoint variable sets, so probabilities
  multiply;
* ``("ite", var, hi, lo)``       — a Shannon decision
  (var AND hi) OR (NOT var AND lo): *deterministic* because the two
  disjuncts are mutually exclusive on ``var``, so probabilities add.

Decomposability + determinism make the circuit a d-DNNF: weighted model
counts, unweighted model counts, and all first-order marginals fall out
of single forward/backward passes.  The compiler mirrors the trace of
the WMC engine — unit-clause conditioning, independent-component
factorization via ``clause_components``, Shannon expansion on a
most-shared variable — but keeps the trace instead of collapsing it to
one number.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Hashable, Iterable, Mapping

from repro.booleans.cnf import CNF
from repro.booleans.connectivity import clause_components

ZERO = Fraction(0)
ONE = Fraction(1)
HALF = Fraction(1, 2)

#: Node kind tags (index 0 of every node tuple).
TRUE, FALSE, LEAF, AND, ITE = "true", "false", "leaf", "and", "ite"

Weights = Mapping | Callable[[Hashable], Fraction] | None


def make_lookup(weights: Weights = None,
                default: Fraction | None = None) -> Callable:
    """Normalize a weight specification into ``var -> Fraction``.

    ``weights`` may be a mapping, a callable, or None; variables missing
    from a mapping fall back to ``default`` (1/2 when unspecified) —
    the same convention as ``repro.tid.wmc.cnf_probability``.
    """
    if callable(weights):
        return weights
    table = dict(weights or {})
    fallback = HALF if default is None else Fraction(default)
    return lambda v: table.get(v, fallback)


def branch_variable(formula: CNF):
    """The Shannon-expansion pivot: a most-shared variable, ties broken
    deterministically on the token's repr."""
    counts: dict[object, int] = {}
    for clause in formula.clauses:
        for var in clause:
            counts[var] = counts.get(var, 0) + 1
    return max(counts, key=lambda v: (counts[v], repr(v)))


class Circuit:
    """An immutable d-DNNF arithmetic circuit.

    ``nodes`` is topologically ordered (children strictly before
    parents), so every query below is a single linear pass.
    """

    __slots__ = ("nodes", "root", "_variables")

    def __init__(self, nodes: tuple, root: int):
        self.nodes = nodes
        self.root = root
        self._variables: frozenset | None = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        total = 0
        for node in self.nodes:
            if node[0] is AND:
                total += len(node[1])
            elif node[0] is ITE:
                total += 2
        return total

    def variables(self) -> frozenset:
        if self._variables is None:
            self._variables = frozenset(
                node[1] for node in self.nodes if node[0] in (LEAF, ITE))
        return self._variables

    def node_counts(self) -> dict[str, int]:
        counts = {TRUE: 0, FALSE: 0, LEAF: 0, AND: 0, ITE: 0}
        for node in self.nodes:
            counts[node[0]] += 1
        return counts

    def depth(self) -> int:
        """Longest root-to-leaf path (0 for a constant circuit)."""
        depths = [0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            if node[0] is AND:
                depths[i] = 1 + max(depths[c] for c in node[1])
            elif node[0] is ITE:
                depths[i] = 1 + max(depths[node[2]], depths[node[3]])
        return depths[self.root]

    def stats(self) -> dict:
        """Summary statistics (the ``repro compile`` CLI report)."""
        counts = self.node_counts()
        return {
            "size": self.size,
            "edges": self.edge_count,
            "depth": self.depth(),
            "variables": len(self.variables()),
            "decision_nodes": counts[ITE],
            "product_nodes": counts[AND],
            "leaf_nodes": counts[LEAF],
        }

    # ------------------------------------------------------------------
    # Linear-time queries
    # ------------------------------------------------------------------
    def probability(self, weights: Weights = None,
                    default: Fraction | None = None) -> Fraction:
        """Pr(F) under independent variables — one forward pass."""
        return self._forward(make_lookup(weights, default))[self.root]

    def _forward(self, lookup) -> list[Fraction]:
        vals: list[Fraction] = [ZERO] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            kind = node[0]
            if kind is ITE:
                p = Fraction(lookup(node[1]))
                vals[i] = p * vals[node[2]] + (ONE - p) * vals[node[3]]
            elif kind is AND:
                acc = ONE
                for child in node[1]:
                    acc *= vals[child]
                    if not acc:
                        break
                vals[i] = acc
            elif kind is LEAF:
                vals[i] = Fraction(lookup(node[1]))
            elif kind is TRUE:
                vals[i] = ONE
        return vals

    def model_count(self, scope: Iterable | None = None) -> int:
        """The number of satisfying assignments over ``scope``.

        ``scope`` must contain every circuit variable (default: exactly
        the circuit variables); variables in ``scope`` that the formula
        does not mention are free and double the count.
        """
        variables = self.variables()
        scope = variables if scope is None else frozenset(scope)
        if not variables <= scope:
            missing = sorted(variables - scope, key=repr)
            raise ValueError(f"scope is missing circuit variables: "
                             f"{missing[:5]}")
        # Pr at the uniform weighting 1/2 is (#models / 2^|scope|),
        # exactly, because every node value is an exact Fraction.
        count = self.probability(lambda v: HALF) * (1 << len(scope))
        if count.denominator != 1:  # pragma: no cover - d-DNNF invariant
            raise AssertionError(f"non-integral model count: {count}")
        return int(count)

    def marginals(self, weights: Weights = None,
                  default: Fraction | None = None) -> dict:
        """All partial derivatives d Pr(F) / d p(var) — one forward plus
        one backward pass (Darwiche's differential semantics).

        Since Pr is multilinear, the marginal of ``var`` also equals
        Pr(F[var:=1]) - Pr(F[var:=0]) at the remaining weights.
        """
        lookup = make_lookup(weights, default)
        vals = self._forward(lookup)
        derivs: list[Fraction] = [ZERO] * len(self.nodes)
        derivs[self.root] = ONE
        grads: dict = {v: ZERO for v in self.variables()}
        for i in range(len(self.nodes) - 1, -1, -1):
            d = derivs[i]
            if not d:
                continue
            node = self.nodes[i]
            kind = node[0]
            if kind is ITE:
                p = Fraction(lookup(node[1]))
                derivs[node[2]] += p * d
                derivs[node[3]] += (ONE - p) * d
                grads[node[1]] += (vals[node[2]] - vals[node[3]]) * d
            elif kind is AND:
                children = node[1]
                # Prefix/suffix products keep the pass linear even when
                # several child values are zero.
                n = len(children)
                prefix = [ONE] * (n + 1)
                for j, child in enumerate(children):
                    prefix[j + 1] = prefix[j] * vals[child]
                suffix = ONE
                for j in range(n - 1, -1, -1):
                    child = children[j]
                    derivs[child] += d * prefix[j] * suffix
                    suffix *= vals[child]
            elif kind is LEAF:
                grads[node[1]] += d
        return grads


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class _Compiler:
    """Hash-consing compiler from minimized monotone CNFs to circuits."""

    def __init__(self):
        self.nodes: list[tuple] = []
        self._intern_table: dict[tuple, int] = {}
        self.true_id = self._intern((TRUE,))
        self.false_id = self._intern((FALSE,))
        self._memo: dict[CNF, int] = {}

    def _intern(self, node: tuple) -> int:
        nid = self._intern_table.get(node)
        if nid is None:
            nid = len(self.nodes)
            self.nodes.append(node)
            self._intern_table[node] = nid
        return nid

    def leaf(self, var) -> int:
        return self._intern((LEAF, var))

    def conjoin(self, children: Iterable[int]) -> int:
        flat: set[int] = set()
        for child in children:
            if child == self.false_id:
                return self.false_id
            if child == self.true_id:
                continue
            node = self.nodes[child]
            if node[0] is AND:
                flat.update(node[1])
            else:
                flat.add(child)
        if not flat:
            return self.true_id
        if len(flat) == 1:
            return next(iter(flat))
        return self._intern((AND, tuple(sorted(flat))))

    def decide(self, var, hi: int, lo: int) -> int:
        if hi == lo:
            return hi
        return self._intern((ITE, var, hi, lo))

    # ------------------------------------------------------------------
    def compile(self, formula: CNF) -> int:
        if formula.is_true():
            return self.true_id
        if formula.is_false():
            return self.false_id
        hit = self._memo.get(formula)
        if hit is not None:
            return hit
        nid = self._compile_uncached(formula)
        self._memo[formula] = nid
        return nid

    def _compile_uncached(self, formula: CNF) -> int:
        # Unit clauses force their variable true: {X} & F == X & F[X:=1],
        # a decomposable product because conditioning removes X.  The
        # min-by-repr choice keeps compilation order-independent.
        units = [clause for clause in formula.clauses if len(clause) == 1]
        if units:
            var = min((next(iter(c)) for c in units), key=repr)
            return self.conjoin([
                self.leaf(var),
                self.compile(formula.condition(var, True))])

        groups = clause_components(formula)
        if len(groups) > 1:
            return self.conjoin(
                self.compile(CNF._from_minimized(group))
                for group in groups)

        var = branch_variable(formula)
        hi = self.compile(formula.condition(var, True))
        lo = self.compile(formula.condition(var, False))
        return self.decide(var, hi, lo)


def compile_cnf(formula: CNF) -> Circuit:
    """Compile a monotone CNF into a d-DNNF circuit.

    Compilation costs about one run of the recursive WMC engine; every
    subsequent ``Circuit.probability`` / ``model_count`` / ``marginals``
    call is linear in the circuit size.  Callers that expect to reuse
    circuits should go through ``repro.tid.wmc.compiled``, the
    module-level compilation cache.
    """
    compiler = _Compiler()
    root = compiler.compile(formula)
    return Circuit(tuple(compiler.nodes), root)
