"""Monotone Boolean formulas in CNF, connectivity analysis,
arithmetization (the bridge between logic and algebra of Section 1.6),
knowledge compilation to d-DNNF circuits, and budgeted approximate
counting with confidence bounds."""

from repro.booleans.cnf import CNF, Clause
from repro.booleans.circuit import (
    Circuit,
    CompilationBudgetExceeded,
    compile_cnf,
)
from repro.booleans.approximate import (
    AutoProbability,
    AutoSweep,
    ProbabilityEstimate,
    estimate_probability,
    hoeffding_sample_count,
)
from repro.booleans.connectivity import (
    is_connected,
    disconnects,
    variable_disconnects,
    clause_distance,
)
from repro.booleans.arithmetize import arithmetize

__all__ = [
    "CNF",
    "Circuit",
    "Clause",
    "CompilationBudgetExceeded",
    "AutoProbability",
    "AutoSweep",
    "ProbabilityEstimate",
    "compile_cnf",
    "estimate_probability",
    "hoeffding_sample_count",
    "is_connected",
    "disconnects",
    "variable_disconnects",
    "clause_distance",
    "arithmetize",
]
