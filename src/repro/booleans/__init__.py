"""Monotone Boolean formulas in CNF, connectivity analysis, and
arithmetization (the bridge between logic and algebra of Section 1.6)."""

from repro.booleans.cnf import CNF, Clause
from repro.booleans.connectivity import (
    is_connected,
    disconnects,
    variable_disconnects,
    clause_distance,
)
from repro.booleans.arithmetize import arithmetize

__all__ = [
    "CNF",
    "Clause",
    "is_connected",
    "disconnects",
    "variable_disconnects",
    "clause_distance",
    "arithmetize",
]
