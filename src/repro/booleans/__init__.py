"""Monotone Boolean formulas in CNF, connectivity analysis,
arithmetization (the bridge between logic and algebra of Section 1.6),
and knowledge compilation to d-DNNF circuits."""

from repro.booleans.cnf import CNF, Clause
from repro.booleans.circuit import Circuit, compile_cnf
from repro.booleans.connectivity import (
    is_connected,
    disconnects,
    variable_disconnects,
    clause_distance,
)
from repro.booleans.arithmetize import arithmetize

__all__ = [
    "CNF",
    "Circuit",
    "Clause",
    "compile_cnf",
    "is_connected",
    "disconnects",
    "variable_disconnects",
    "clause_distance",
    "arithmetize",
]
