"""Migrating variables and conditional independence (Appendix B).

For a monotone Boolean formula F with independent variables, write
Pr_F(-) = Pr(- | F) for the distribution conditioned on F being true.
Appendix B connects three views of separation:

* syntactic: X disconnects U, V when both cofactors F[X:=0], F[X:=1]
  split into variable-disjoint parts separating U from V;
* probabilistic (Lemma B.7): X disconnects U, V iff U and V are
  conditionally independent given X in Pr_F;
* algebraic (Theorem B.1): the 2x2 matrix of cofactor arithmetizations
  has rank 1 iff its determinant vanishes identically.

A variable Y is *migrating* w.r.t. (X, U, V) (Definition B.8) when X
disconnects U, V but disconnects neither U+Y, V nor U, V+Y — Y sits on
different sides in the two cofactors.  Corollary B.12: migration is
symmetric in X and Y.  Migrating variables are what complicates the
Type-II consistent-assignment argument (Section C.7 onward).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product
from typing import Iterable, Mapping

from repro.booleans.cnf import CNF
from repro.booleans.connectivity import variable_disconnects
from repro.tid.wmc import cnf_probability

HALF = Fraction(1, 2)


def conditioned_probability(formula: CNF, prob: Mapping,
                            event: Mapping) -> Fraction:
    """Pr_F(event) = Pr(event and F) / Pr(F) for a partial assignment
    ``event`` (variable -> bool)."""
    denominator = cnf_probability(formula, prob)
    if denominator == 0:
        raise ZeroDivisionError("conditioning on an impossible formula")
    restricted = formula.condition_many(event)
    weight = Fraction(1)
    lookup = prob if callable(prob) else \
        (lambda v: prob.get(v, HALF))  # noqa: E731
    for var, value in event.items():
        p = Fraction(lookup(var))
        weight *= p if value else 1 - p
    return weight * cnf_probability(restricted, prob) / denominator


def conditionally_independent(formula: CNF, prob: Mapping,
                              left: Iterable, right: Iterable,
                              given) -> bool:
    """U ⊥_F V | X, decided by exhaustive checking of
    Pr(U=a, V=b | X=x) = Pr(U=a | X=x) * Pr(V=b | X=x)."""
    left = sorted(set(left), key=repr)
    right = sorted(set(right), key=repr)
    for x_value in (False, True):
        base = {given: x_value}
        pr_x = conditioned_probability(formula, prob, base)
        if pr_x == 0:
            continue
        for l_bits in iter_product((False, True), repeat=len(left)):
            l_event = dict(zip(left, l_bits))
            for r_bits in iter_product((False, True), repeat=len(right)):
                r_event = dict(zip(right, r_bits))
                joint = conditioned_probability(
                    formula, prob, {**base, **l_event, **r_event})
                p_l = conditioned_probability(formula, prob,
                                              {**base, **l_event})
                p_r = conditioned_probability(formula, prob,
                                              {**base, **r_event})
                if joint * pr_x != p_l * p_r:
                    return False
    return True


def is_migrating(formula: CNF, x, y, left: Iterable,
                 right: Iterable) -> bool:
    """Definition B.8: Y migrates w.r.t. (X, U, V)."""
    left = frozenset(left)
    right = frozenset(right)
    if not variable_disconnects(formula, x, left, right):
        raise ValueError("X must disconnect U, V")
    return (not variable_disconnects(formula, x, left | {y}, right)
            and not variable_disconnects(formula, x, left, right | {y}))


def migrating_variables(formula: CNF, x, left: Iterable,
                        right: Iterable) -> frozenset:
    """All variables migrating w.r.t. (X, U, V)."""
    left = frozenset(left)
    right = frozenset(right)
    out = set()
    for var in formula.variables():
        if var == x or var in left or var in right:
            continue
        if is_migrating(formula, x, var, left, right):
            out.add(var)
    return frozenset(out)


def rank_one_factorization_exists(y00, y01, y10, y11) -> bool:
    """Theorem B.1 (decision form): det == 0 iff the 2x2 polynomial
    matrix factors as an outer product (g0, g1) x (h0, h1)."""
    return (y00 * y11 - y01 * y10).is_zero()
