"""Content-addressed on-disk persistence for compiled circuits.

Compilation is the exponential step; everything after it is linear.
Within one process the LRU cache in ``repro.tid.wmc`` already amortizes
it, but every *new* process — each CLI invocation, each worker of a
future service — used to pay it again.  This module stores serialized
circuits (``Circuit.to_bytes``) under a key derived from the formula
itself, so any process that can hash the CNF can skip straight to the
linear phase.

The key is ``cnf_fingerprint``: a SHA-256 over a *canonical* encoding
of the minimized clause set.  Minimized monotone CNFs are canonical for
their Boolean function, so equal fingerprints mean logically equivalent
formulas; the encoding sorts clauses and tokens by their serialized
form, making the key independent of ``PYTHONHASHSEED``, insertion
order, and process identity — unlike ``hash(cnf)``, which is salted.

Layout: ``<root>/<key[:2]>/<key>.ddnnf`` (git-object-style fan-out).
Writes are atomic (temp file + rename); unreadable or wrong-version
entries are treated as misses, so a store produced by a newer format
never crashes an older reader — it just recompiles.

Flattened instruction tapes (``repro.booleans.tape``) are persisted as
a versioned sidecar section next to the circuit bytes —
``<key>.tape`` beside ``<key>.ddnnf`` — so a warm process (notably the
long-lived service) deserializes both and never re-flattens.  Tapes
obey the same contract as circuits: atomic writes, corruption-as-miss,
version skew tolerated.  ``prune(max_bytes=...)`` offers size-capped
eviction (oldest access time first) for stores that must live inside a
disk budget.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

from repro.booleans.circuit import (
    Circuit,
    UnsupportedVersionError,
    encode_token,
)
from repro.booleans.cnf import CNF
from repro.booleans.tape import Tape
from repro import obs

#: Fingerprint domain separator: bump when the canonical encoding (not
#: the circuit format — that is versioned in its own header) changes.
FINGERPRINT_VERSION = 1

SUFFIX = ".ddnnf"
TAPE_SUFFIX = ".tape"


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never observe a torn file.

    The bytes land in a same-directory temp file (flushed and fsynced,
    so a crash cannot rename a half-written blob into place) and are
    published with ``os.replace``, which is atomic on POSIX and
    Windows: a concurrent reader sees either the old content or the
    complete new content, and concurrent writers of the same path race
    benignly (last rename wins).  Shared by the circuit store and every
    CLI/service code path that persists a circuit to a user-named file.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent or Path("."),
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def cnf_fingerprint(formula: CNF) -> str:
    """A deterministic content address for a minimized monotone CNF.

    Stable across processes, hash seeds, and clause/token insertion
    orders: tokens are serialized with the type-tagged circuit codec,
    sorted within each clause, and the clauses sorted by their encoded
    form before hashing.
    """
    encoded_clauses = sorted(
        sorted(json.dumps(encode_token(var), separators=(",", ":"),
                          sort_keys=True)
               for var in clause)
        for clause in formula.clauses)
    payload = json.dumps(
        {"v": FINGERPRINT_VERSION, "clauses": encoded_clauses},
        separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CircuitStore:
    """A content-addressed directory of serialized d-DNNF circuits."""

    def __init__(self, root: str | os.PathLike, *, clock=time.time):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._clock = clock

    def _touch(self, path: Path) -> None:
        """Record a read so ``prune``'s oldest-atime-first order is the
        true access order.

        ``relatime`` (the Linux mount default) and ``noatime`` stop the
        kernel from updating ``st_atime`` on reads, which silently
        turns "evict the least recently *used*" into "evict the least
        recently *written*" — i.e. the hottest long-lived circuits go
        first.  An explicit, best-effort ``os.utime`` on every hit
        keeps eviction honest regardless of mount options; mtime is
        preserved so the write time stays meaningful.
        """
        try:
            stat = path.stat()
            os.utime(path, (self._clock(), stat.st_mtime))
        except OSError:
            pass

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / (key + SUFFIX)

    def get(self, formula: CNF) -> Circuit | None:
        """The stored circuit for ``formula``, or None on a miss.

        Corrupt or wrong-version entries count as misses and are
        removed so they are rebuilt cleanly on the next ``put``.
        """
        return self.load(cnf_fingerprint(formula))

    def load(self, key: str) -> Circuit | None:
        with obs.span("store-read", kind="circuit") as sp:
            return self._load(key, sp)

    def _load(self, key: str, sp) -> Circuit | None:
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            sp.tag(hit=False)
            return None
        sp.tag(hit=True, bytes=len(data))
        self._touch(path)
        try:
            return Circuit.from_bytes(data)
        except UnsupportedVersionError:
            # A different format version, not corruption: leave the
            # entry for readers of that version (two deployments may
            # share one store across a version bump; deleting here
            # would make them destructively evict each other).
            return None
        except ValueError:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, formula: CNF, circuit: Circuit) -> Path:
        """Persist ``circuit`` under ``formula``'s fingerprint.

        The write is atomic: concurrent writers of the same key race
        benignly (same content, last rename wins).
        """
        return self.save(cnf_fingerprint(formula), circuit)

    def save(self, key: str, circuit: Circuit) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with obs.span("store-write", kind="circuit"):
            atomic_write_bytes(path, circuit.to_bytes())
        return path

    # ------------------------------------------------------------------
    # Tape sidecars (versioned section next to the circuit bytes)
    # ------------------------------------------------------------------
    def tape_path_for(self, key: str) -> Path:
        return self.root / key[:2] / (key + TAPE_SUFFIX)

    def get_tape(self, formula: CNF) -> Tape | None:
        """The stored instruction tape for ``formula``, or None.

        Same contract as ``get``: corruption is a miss (and the entry
        is removed), version skew is a miss (and the entry is kept for
        readers of that version).  Callers must still check
        ``Tape.matches(circuit)`` before adopting — the sidecar could
        have been written against a circuit from a different compiler
        generation.
        """
        return self.load_tape(cnf_fingerprint(formula))

    def load_tape(self, key: str) -> Tape | None:
        with obs.span("store-read", kind="tape") as sp:
            return self._load_tape(key, sp)

    def _load_tape(self, key: str, sp) -> Tape | None:
        path = self.tape_path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            sp.tag(hit=False)
            return None
        sp.tag(hit=True, bytes=len(data))
        self._touch(path)
        try:
            return Tape.from_bytes(data)
        except UnsupportedVersionError:
            return None
        except ValueError:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put_tape(self, formula: CNF, tape: Tape) -> Path:
        return self.save_tape(cnf_fingerprint(formula), tape)

    def save_tape(self, key: str, tape: Tape) -> Path:
        path = self.tape_path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with obs.span("store-write", kind="tape"):
            atomic_write_bytes(path, tape.to_bytes())
        return path

    # ------------------------------------------------------------------
    def prune(self, max_bytes: int) -> dict:
        """Size-capped eviction: delete entries, oldest access time
        first, until the store fits in ``max_bytes``.

        Evicting a circuit also evicts its tape sidecar (a tape without
        its circuit is dead weight — ``load_tape`` callers only adopt a
        tape that matches a circuit they already hold); evicting just a
        tape leaves the circuit usable.  Returns a report dict for the
        service ``store_gc`` op and the ``repro ctl store-gc`` verb.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        with obs.span("store-prune", max_bytes=max_bytes):
            return self._prune(max_bytes)

    def _prune(self, max_bytes: int) -> dict:
        entries = []
        for path in sorted(self.root.glob("??/*")):
            if path.suffix not in (SUFFIX, TAPE_SUFFIX):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_atime, path, stat.st_size))
        total = sum(size for _, _, size in entries)
        before = total
        removed = 0
        dropped: set[Path] = set()
        # Oldest atime first; path name breaks ties deterministically.
        entries.sort(key=lambda e: (e[0], str(e[1])))
        for _, path, _size in entries:
            if total <= max_bytes:
                break
            if path in dropped:
                continue
            victims = [path]
            if path.suffix == SUFFIX:
                sidecar = path.with_suffix(TAPE_SUFFIX)
                if sidecar.exists() and sidecar not in dropped:
                    victims.append(sidecar)
            for victim in victims:
                try:
                    freed = victim.stat().st_size
                    victim.unlink()
                except OSError:
                    continue
                dropped.add(victim)
                removed += 1
                total -= freed
        return {
            "examined": len(entries),
            "removed": removed,
            "bytes_before": before,
            "bytes_after": max(total, 0),
            "max_bytes": max_bytes,
        }

    # ------------------------------------------------------------------
    def __contains__(self, formula: CNF) -> bool:
        return self.path_for(cnf_fingerprint(formula)).exists()

    def keys(self) -> list[str]:
        return sorted(
            path.stem for path in self.root.glob(f"??/*{SUFFIX}"))

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> None:
        for suffix in (SUFFIX, TAPE_SUFFIX):
            for path in self.root.glob(f"??/*{suffix}"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __repr__(self) -> str:
        return f"CircuitStore({str(self.root)!r}, {len(self)} circuits)"
