"""Content-addressed on-disk persistence for compiled circuits.

Compilation is the exponential step; everything after it is linear.
Within one process the LRU cache in ``repro.tid.wmc`` already amortizes
it, but every *new* process — each CLI invocation, each worker of a
future service — used to pay it again.  This module stores serialized
circuits (``Circuit.to_bytes``) under a key derived from the formula
itself, so any process that can hash the CNF can skip straight to the
linear phase.

The key is ``cnf_fingerprint``: a SHA-256 over a *canonical* encoding
of the minimized clause set.  Minimized monotone CNFs are canonical for
their Boolean function, so equal fingerprints mean logically equivalent
formulas; the encoding sorts clauses and tokens by their serialized
form, making the key independent of ``PYTHONHASHSEED``, insertion
order, and process identity — unlike ``hash(cnf)``, which is salted.

Layout: ``<root>/<key[:2]>/<key>.ddnnf`` (git-object-style fan-out).
Writes are atomic (temp file + rename); unreadable or wrong-version
entries are treated as misses, so a store produced by a newer format
never crashes an older reader — it just recompiles.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.booleans.circuit import (
    Circuit,
    UnsupportedVersionError,
    encode_token,
)
from repro.booleans.cnf import CNF

#: Fingerprint domain separator: bump when the canonical encoding (not
#: the circuit format — that is versioned in its own header) changes.
FINGERPRINT_VERSION = 1

SUFFIX = ".ddnnf"


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never observe a torn file.

    The bytes land in a same-directory temp file (flushed and fsynced,
    so a crash cannot rename a half-written blob into place) and are
    published with ``os.replace``, which is atomic on POSIX and
    Windows: a concurrent reader sees either the old content or the
    complete new content, and concurrent writers of the same path race
    benignly (last rename wins).  Shared by the circuit store and every
    CLI/service code path that persists a circuit to a user-named file.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent or Path("."),
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def cnf_fingerprint(formula: CNF) -> str:
    """A deterministic content address for a minimized monotone CNF.

    Stable across processes, hash seeds, and clause/token insertion
    orders: tokens are serialized with the type-tagged circuit codec,
    sorted within each clause, and the clauses sorted by their encoded
    form before hashing.
    """
    encoded_clauses = sorted(
        sorted(json.dumps(encode_token(var), separators=(",", ":"),
                          sort_keys=True)
               for var in clause)
        for clause in formula.clauses)
    payload = json.dumps(
        {"v": FINGERPRINT_VERSION, "clauses": encoded_clauses},
        separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CircuitStore:
    """A content-addressed directory of serialized d-DNNF circuits."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / (key + SUFFIX)

    def get(self, formula: CNF) -> Circuit | None:
        """The stored circuit for ``formula``, or None on a miss.

        Corrupt or wrong-version entries count as misses and are
        removed so they are rebuilt cleanly on the next ``put``.
        """
        return self.load(cnf_fingerprint(formula))

    def load(self, key: str) -> Circuit | None:
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            return Circuit.from_bytes(data)
        except UnsupportedVersionError:
            # A different format version, not corruption: leave the
            # entry for readers of that version (two deployments may
            # share one store across a version bump; deleting here
            # would make them destructively evict each other).
            return None
        except ValueError:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, formula: CNF, circuit: Circuit) -> Path:
        """Persist ``circuit`` under ``formula``'s fingerprint.

        The write is atomic: concurrent writers of the same key race
        benignly (same content, last rename wins).
        """
        return self.save(cnf_fingerprint(formula), circuit)

    def save(self, key: str, circuit: Circuit) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, circuit.to_bytes())
        return path

    # ------------------------------------------------------------------
    def __contains__(self, formula: CNF) -> bool:
        return self.path_for(cnf_fingerprint(formula)).exists()

    def keys(self) -> list[str]:
        return sorted(
            path.stem for path in self.root.glob(f"??/*{SUFFIX}"))

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> None:
        for path in self.root.glob(f"??/*{SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:
        return f"CircuitStore({str(self.root)!r}, {len(self)} circuits)"
