"""Adaptive estimation: variance-aware stopping, importance sampling,
and budget-aware sweep planning.

The fixed-n Hoeffding estimator (``repro.booleans.approximate``) pays
the full worst-case ``ln(2/delta) / (2 epsilon^2)`` sample count on
every past-budget query, even when the lineage's Bernoulli variance is
tiny — and its additive interval is uninformative for the
small-probability lineages the Type-II reductions produce.  This module
supplies the three standard upgrades, all exact-rational and
hash-seed-deterministic like the rest of the codebase:

* ``adaptive_estimate_probability`` — a sequential estimator drawing
  samples in geometric batches and stopping as soon as an
  empirical-Bernstein bound (variance-adaptive; Maurer & Pontil 2009)
  certifies the requested additive or relative error.  The failure
  budget is split across checkpoints (``delta/2`` over the Bernstein
  sequence, ``delta/2`` on a final Hoeffding fallback at the worst-case
  count), so the returned interval is strictly valid at the same
  ``(epsilon, delta)`` as the fixed-n estimator, and in the additive
  mode early stopping can only ever *narrow* it (a ``relative_error``
  target replaces the additive stopping rule, and the achieved
  half-width is then whatever the relative criterion — or the sample
  cap — left standing).  Every bound is computed as an exact
  ``Fraction`` upper bound: square roots via ``math.isqrt`` rounding
  up, logarithms via the float value inflated by one part in 2^32
  (double logs are correctly rounded to well under that).

* ``importance_estimate_probability`` — a self-normalized importance
  sampler for small Pr(F): literal weights are tilted *toward*
  satisfying assignments (monotone CNFs are monotone in every
  marginal, so raising marginals raises the hit rate), with the total
  tilt capped so every likelihood ratio stays in ``[0, weight_cap]``
  and the empirical-Bernstein machinery above still applies.  The
  interval is centered on the unbiased importance-weighted mean; the
  reported point estimate is the lower-variance self-normalized ratio,
  clamped into the interval.

* ``BudgetPlanner`` — budget-aware sweep planning: a log-linear fit of
  observed ``(clause count, circuit nodes)`` compilation outcomes (the
  exact trajectory ``benchmarks/bench_approx.py``'s growth probe
  measures) extrapolates how large a factor's circuit will be, and
  ``budget_for`` turns the prediction into a per-factor
  ``budget_nodes`` so Type-II sweeps abort hopeless factors early and
  never strangle easy ones.

Everything downstream reaches these through the ``estimator`` tier of
the ``auto`` policy (``repro.tid.wmc.cnf_probability_auto`` /
``probability_batch_auto`` with ``estimator="adaptive"`` or
``"importance"``), the ``"adaptive"`` evaluation method, the reduction
sweeps' ``method="adaptive"``, the CLI's ``--engine``, and the service
protocol's per-request ``estimator`` override.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass
from fractions import Fraction

from repro.booleans.approximate import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    ProbabilityEstimate,
    hoeffding_sample_count,
)
from repro.booleans.circuit import Weights, make_lookup
from repro.booleans.cnf import CNF

__all__ = [
    "ENGINE_LABELS",
    "ESTIMATORS",
    "BudgetPlanner",
    "adaptive_estimate_probability",
    "bernstein_radius",
    "estimate_batch_with",
    "estimate_with",
    "importance_estimate_probability",
    "tilted_proposal",
]

ZERO = Fraction(0)
ONE = Fraction(1)

#: The samplers the ``estimator`` policy tier can name.
ESTIMATORS = ("hoeffding", "adaptive", "importance")

#: The engine/method label a result records per sampler —
#: ``"estimate"`` keeps the PR 3 name for the fixed-n Hoeffding path.
ENGINE_LABELS = {"hoeffding": "estimate", "adaptive": "adaptive",
                 "importance": "importance"}


def resolve_sweep_method(method: str, estimator: str,
                         allowed=("exact", "auto")) -> tuple[str, str]:
    """Normalize a reduction sweep's (method, estimator) pair:
    ``"adaptive"`` is the ``auto`` policy with the sequential sampler
    as its degraded engine (an explicitly chosen non-default estimator
    wins).  Raises on anything outside ``allowed`` + ``"adaptive"``."""
    if method == "adaptive":
        return "auto", ("adaptive" if estimator == "hoeffding"
                        else estimator)
    if method not in allowed:
        raise ValueError(
            f"method must be one of {', '.join(allowed)}, or "
            f"'adaptive', got {method!r}")
    return method, estimator

#: First empirical-Bernstein checkpoint and the batch growth factor:
#: checkpoint k sees INITIAL_BATCH * GROWTH^k samples, so the number of
#: delta-spending checkpoints is logarithmic in the worst-case count.
INITIAL_BATCH = 64
GROWTH = 2

#: Default likelihood-ratio bound of the importance sampler: the total
#: tilt is capped so no world's weight exceeds this, keeping the
#: Bernstein range — and with it the worst-case sample count, which
#: scales with the cap *squared* — small.
DEFAULT_WEIGHT_CAP = Fraction(4)

#: ln upper bounds inflate the (correctly rounded, <= 1 ulp off) float
#: logarithm by one part in 2^32 — far more than a double's relative
#: error, far less than anything that could move a stopping decision.
_LOG_SLACK = Fraction(2 ** 32 + 1, 2 ** 32)


# ----------------------------------------------------------------------
# Exact-rational upper bounds on the irrational pieces
# ----------------------------------------------------------------------
def sqrt_upper(value: Fraction) -> Fraction:
    """A rational upper bound on sqrt(value): ``sqrt(n/d) = sqrt(nd)/d``
    with the integer square root rounded up."""
    value = Fraction(value)
    if value < 0:
        raise ValueError(f"sqrt of negative value {value}")
    product = value.numerator * value.denominator
    root = math.isqrt(product)
    if root * root < product:
        root += 1
    return Fraction(root, value.denominator)


def log_upper(value: Fraction) -> Fraction:
    """A rational upper bound on ln(value) for value >= 1."""
    value = Fraction(value)
    if value < 1:
        raise ValueError(f"log_upper needs value >= 1, got {value}")
    return Fraction(math.log(value)) * _LOG_SLACK


def bernstein_radius(samples: int, mean: Fraction, variance: Fraction,
                     delta: Fraction,
                     range_high: Fraction = ONE) -> Fraction:
    """The two-sided empirical-Bernstein half-width (Maurer & Pontil,
    Theorem 4, both tails) for ``samples`` i.i.d. draws in
    ``[0, range_high]`` with sample mean ``mean`` and *unbiased* sample
    variance ``variance``:

        sqrt(2 V ln(4/delta) / n)  +  7 R ln(4/delta) / (3 (n - 1)),

    as an exact rational upper bound.  The first term adapts to the
    observed variance — the whole point of the sequential estimator —
    and the second pays for not knowing the variance in advance.
    """
    if samples < 2:
        return range_high
    log_term = log_upper(Fraction(4) / delta)
    return (sqrt_upper(2 * variance * log_term / samples)
            + 7 * range_high * log_term / (3 * (samples - 1)))


def _checkpoint_delta(delta: Fraction, checkpoint: int) -> Fraction:
    """The failure budget of checkpoint k >= 1: delta/2 * 1/(k(k+1)),
    which sums to exactly delta/2 over all checkpoints."""
    return delta / (2 * checkpoint * (checkpoint + 1))


# ----------------------------------------------------------------------
# The sequential empirical-Bernstein estimator
# ----------------------------------------------------------------------
def _targets_met(radius: Fraction, mean: Fraction, epsilon: Fraction,
                 relative_error: Fraction | None) -> bool:
    """Whether the current interval certifies what was asked: the
    additive target, or — when a relative target is set — a radius
    small against the interval's *lower* end, which lower-bounds the
    truth and so makes the relative claim strictly valid."""
    if relative_error is not None:
        low = mean - radius
        return low > 0 and radius <= relative_error * low
    return radius <= epsilon


def _finish(mean, radius, epsilon, delta, samples, successes, method,
            cap, center=None) -> ProbabilityEstimate:
    """Assemble the returned estimate: the achieved half-width is the
    best certified bound (never wider than the additive guarantee the
    run's sample cap underwrites), and the achieved relative error is
    reported whenever the interval stays away from 0."""
    achieved = radius
    if samples >= cap:
        # The delta/2 Hoeffding fallback certifies epsilon at the cap
        # even when the Bernstein radius is still wider.
        achieved = min(achieved, epsilon)
    interval_center = mean if center is None else center
    low = interval_center - achieved
    relative = achieved / low if low > 0 else None
    estimate = mean if center is None else \
        min(max(center - achieved, mean), center + achieved)
    return ProbabilityEstimate(
        estimate=estimate, epsilon=achieved, delta=delta,
        samples=samples, successes=successes, method=method,
        relative_error=relative, samples_used=samples,
        center=None if center is None else interval_center)


def adaptive_estimate_probability(formula: CNF, weights: Weights = None,
                                  epsilon=DEFAULT_EPSILON,
                                  delta=DEFAULT_DELTA,
                                  rng: random.Random | int | None = None,
                                  default: Fraction | None = None,
                                  relative_error=None
                                  ) -> ProbabilityEstimate:
    """Sequential Monte-Carlo Pr(F), stopping as soon as an
    empirical-Bernstein bound certifies the target.

    Samples arrive in geometric batches; checkpoint ``k`` spends
    ``delta/2 * 1/(k(k+1))`` of the failure budget on a
    variance-adaptive Bernstein interval, and the remaining ``delta/2``
    underwrites a Hoeffding fallback at the worst-case count
    ``hoeffding_sample_count(epsilon, delta/2)`` — so the run always
    terminates with an interval no wider than ``epsilon``, and
    low-variance formulas terminate far earlier.  With
    ``relative_error`` set, sampling instead continues until the
    half-width is at most that fraction of the interval's lower end
    (a strictly valid relative guarantee), still capped at the
    worst-case count.

    Draws, iteration orders, and every bound are exact-rational and
    pinned, so a fixed ``rng`` seed reproduces the estimate across
    processes and ``PYTHONHASHSEED`` values.
    """
    epsilon = Fraction(epsilon)
    delta = Fraction(delta)
    if relative_error is not None:
        relative_error = Fraction(relative_error)
        if relative_error <= 0:
            raise ValueError(
                f"relative_error must be positive, got {relative_error}")
    cap = hoeffding_sample_count(epsilon, delta / 2)
    if not isinstance(rng, random.Random):
        rng = random.Random(0 if rng is None else rng)
    lookup = make_lookup(weights, default)
    variables = sorted(formula.variables(), key=repr)
    index = {var: i for i, var in enumerate(variables)}
    marginals = [Fraction(lookup(var)) for var in variables]
    clauses = sorted(
        (sorted(index[var] for var in clause)
         for clause in formula.clauses),
        key=lambda c: (len(c), c))
    samples = successes = 0
    checkpoint = 0
    mean = radius = ONE
    while samples < cap:
        checkpoint += 1
        target = min(cap, INITIAL_BATCH * GROWTH ** (checkpoint - 1))
        while samples < target:
            world = [rng.random() < p for p in marginals]
            samples += 1
            if all(any(world[i] for i in clause) for clause in clauses):
                successes += 1
        mean = Fraction(successes, samples)
        # Unbiased sample variance of 0/1 draws.
        variance = (Fraction(successes * (samples - successes),
                             samples * (samples - 1))
                    if samples > 1 else ONE)
        radius = bernstein_radius(samples, mean, variance,
                                  _checkpoint_delta(delta, checkpoint))
        if _targets_met(radius, mean, epsilon, relative_error):
            break
    return _finish(mean, radius, epsilon, delta, samples, successes,
                   "bernstein", cap)


# ----------------------------------------------------------------------
# Self-normalized importance sampling for small-probability lineages
# ----------------------------------------------------------------------
def tilted_proposal(marginals: list[Fraction],
                    weight_cap: Fraction = DEFAULT_WEIGHT_CAP,
                    tilt: Fraction = Fraction(2)) -> list[Fraction]:
    """Proposal marginals tilted toward satisfying assignments.

    Each variable's failure mass shrinks by up to ``tilt``
    (``q = 1 - (1 - p)/t``), lowest-marginal variables first — they
    are the likely falsifiers of a monotone clause — with the *total*
    tilt capped so the product of per-variable likelihood ratios never
    exceeds ``weight_cap``.  A draw of False at a tilted variable
    contributes ratio exactly ``t``; a draw of True contributes
    ``p/q <= 1``; so every world's weight lies in ``[0, weight_cap]``
    — the bounded range the Bernstein machinery needs.
    """
    weight_cap = Fraction(weight_cap)
    tilt = Fraction(tilt)
    if weight_cap < 1:
        raise ValueError(f"weight_cap must be >= 1, got {weight_cap}")
    if tilt <= 1:
        raise ValueError(f"tilt must exceed 1, got {tilt}")
    proposal = list(marginals)
    budget = weight_cap
    order = sorted(range(len(marginals)), key=lambda i: marginals[i])
    for i in order:
        if budget <= 1:
            break
        p = marginals[i]
        if not 0 < p < 1:
            continue  # pinned variables cannot be tilted
        step = min(tilt, budget)
        proposal[i] = 1 - (1 - p) / step
        budget /= step
    return proposal


def importance_estimate_probability(formula: CNF,
                                    weights: Weights = None,
                                    epsilon=DEFAULT_EPSILON,
                                    delta=DEFAULT_DELTA,
                                    rng: random.Random | int |
                                    None = None,
                                    default: Fraction | None = None,
                                    relative_error=None,
                                    weight_cap=DEFAULT_WEIGHT_CAP,
                                    max_samples: int | None = None
                                    ) -> ProbabilityEstimate:
    """Sequential self-normalized importance sampling of Pr(F).

    Worlds are drawn from the tilted proposal of ``tilted_proposal``;
    each satisfying draw contributes its exact likelihood ratio, whose
    mean is *unbiasedly* Pr(F) under the target weights.  The interval
    comes from the empirical-Bernstein bound on those bounded weighted
    draws (range ``weight_cap``), with the same checkpointed delta
    spending as ``adaptive_estimate_probability``; the run is capped at
    the Hoeffding count for range ``weight_cap`` (certifying the
    additive target through the reserved ``delta/2``) or at
    ``max_samples`` when given — an explicit cap trades the guarantee
    for bounded work, and the achieved half-width is reported either
    way.

    The reported point estimate is the self-normalized ratio
    ``sum(w * sat) / sum(w)`` — the mean weight estimates 1, and
    dividing by it cancels sampling noise shared by numerator and
    denominator — clamped into the (unbiased-centered) interval, so
    ``contains`` semantics are unaffected.  Small Pr(F) is exactly
    where the tilt pays: the hit rate under the proposal is orders of
    magnitude higher, so the variance of the weighted draws — and with
    it the stopping time for a *relative*-error target — collapses.
    """
    epsilon = Fraction(epsilon)
    delta = Fraction(delta)
    weight_cap = Fraction(weight_cap)
    if relative_error is not None:
        relative_error = Fraction(relative_error)
        if relative_error <= 0:
            raise ValueError(
                f"relative_error must be positive, got {relative_error}")
    # Hoeffding for draws in [0, R] needs R^2 times the unit-range
    # count for the same additive target; an explicit max_samples may
    # stop before that, trading the epsilon certificate for bounded
    # work (the achieved half-width is reported either way).  The
    # ceiling is taken on the exact rational — rounding through floats
    # could land one sample short of what the delta/2 fallback needs.
    full_cap = math.ceil(hoeffding_sample_count(epsilon, delta / 2)
                         * weight_cap ** 2)
    cap = full_cap if max_samples is None \
        else min(full_cap, max(2, max_samples))
    if not isinstance(rng, random.Random):
        rng = random.Random(0 if rng is None else rng)
    lookup = make_lookup(weights, default)
    variables = sorted(formula.variables(), key=repr)
    index = {var: i for i, var in enumerate(variables)}
    marginals = [Fraction(lookup(var)) for var in variables]
    proposal = tilted_proposal(marginals, weight_cap)
    # Per-variable likelihood ratios for draws of True / False.
    ratio_true = [p / q if q else ONE
                  for p, q in zip(marginals, proposal)]
    ratio_false = [(1 - p) / (1 - q) if q != 1 else ONE
                   for p, q in zip(marginals, proposal)]
    clauses = sorted(
        (sorted(index[var] for var in clause)
         for clause in formula.clauses),
        key=lambda c: (len(c), c))
    samples = successes = 0
    weight_sum = ZERO          # sum of w (all draws)
    hit_sum = ZERO             # sum of w * 1[sat]
    hit_square_sum = ZERO      # sum of (w * 1[sat])^2
    checkpoint = 0
    mean = radius = weight_cap
    while samples < cap:
        checkpoint += 1
        target = min(cap, INITIAL_BATCH * GROWTH ** (checkpoint - 1))
        while samples < target:
            world = [rng.random() < q for q in proposal]
            samples += 1
            weight = ONE
            for i, bit in enumerate(world):
                weight *= ratio_true[i] if bit else ratio_false[i]
            weight_sum += weight
            if all(any(world[i] for i in clause) for clause in clauses):
                successes += 1
                hit_sum += weight
                hit_square_sum += weight * weight
        mean = hit_sum / samples
        variance = ((hit_square_sum - samples * mean * mean)
                    / (samples - 1) if samples > 1 else ONE)
        radius = bernstein_radius(samples, mean, variance,
                                  _checkpoint_delta(delta, checkpoint),
                                  range_high=weight_cap)
        if _targets_met(radius, mean, epsilon, relative_error):
            break
    self_normalized = (hit_sum / weight_sum if weight_sum > 0
                       else mean)
    return _finish(min(ONE, max(ZERO, self_normalized)), radius,
                   epsilon, delta, samples, successes, "importance",
                   full_cap, center=min(ONE, max(ZERO, mean)))


# ----------------------------------------------------------------------
# The estimator registry (the policy tier's dispatch table)
# ----------------------------------------------------------------------
def estimate_with(estimator: str, formula: CNF, weights: Weights = None,
                  epsilon=DEFAULT_EPSILON, delta=DEFAULT_DELTA,
                  rng: random.Random | int | None = None,
                  default: Fraction | None = None,
                  relative_error=None) -> ProbabilityEstimate:
    """One estimate via the named sampler — the single dispatch point
    behind the ``estimator`` knob of the ``auto`` policy, the
    evaluation methods, the CLI ``--engine`` flag, and the service's
    per-request override."""
    if estimator == "hoeffding":
        if relative_error is not None:
            raise ValueError(
                "the fixed-n Hoeffding estimator has no relative-error "
                "mode; use estimator='adaptive' or 'importance'")
        from repro.booleans.approximate import estimate_probability
        return estimate_probability(formula, weights, epsilon, delta,
                                    rng, default)
    if estimator == "adaptive":
        return adaptive_estimate_probability(
            formula, weights, epsilon, delta, rng, default,
            relative_error)
    if estimator == "importance":
        return importance_estimate_probability(
            formula, weights, epsilon, delta, rng, default,
            relative_error)
    raise ValueError(
        f"unknown estimator {estimator!r}; pick from {ESTIMATORS}")


def estimate_batch_with(estimator: str, formula: CNF, weight_specs,
                        epsilon=DEFAULT_EPSILON, delta=DEFAULT_DELTA,
                        rng: random.Random | int | None = None,
                        default: Fraction | None = None,
                        relative_error=None
                        ) -> list[ProbabilityEstimate]:
    """One estimate per weight specification via the named sampler,
    sharing a single seeded ``rng`` so the whole sweep reproduces."""
    if not isinstance(rng, random.Random):
        rng = random.Random(0 if rng is None else rng)
    return [estimate_with(estimator, formula, spec, epsilon, delta,
                          rng, default, relative_error)
            for spec in weight_specs]


# ----------------------------------------------------------------------
# Budget-aware sweep planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Observation:
    clauses: int
    nodes: int


class BudgetPlanner:
    """Per-formula compilation budgets from the observed circuit-size
    trajectory.

    Circuit size on the adversarial families grows super-linearly
    (empirically ~exponentially) in the clause count —
    ``benchmarks/bench_approx.py``'s growth probe measures exactly the
    ``(clauses, circuit_nodes)`` pairs this planner consumes.  A
    least-squares fit of ``ln(nodes)`` against ``clauses`` over the
    observations extrapolates the expected node count of an unseen
    formula, and ``budget_for`` converts that into a per-factor
    ``budget_nodes``: predicted size times a safety ``margin``, clamped
    to ``[floor, cap]``.  Factors predicted to blow past ``cap`` abort
    immediately instead of burning an exponential search before
    degrading; factors predicted tiny still get ``floor`` headroom, so
    an optimistic fit never strangles an easy compilation.

    The planner learns online: every sweep that compiles a factor
    exactly reports the outcome back through ``observe``.  With fewer
    than two distinct clause counts there is no trajectory to fit and
    ``budget_for`` returns the fallback.  Deterministic: observations
    are kept sorted and the fit is exact float arithmetic over them.
    """

    def __init__(self, margin: int = 4, floor: int = 2_048,
                 cap: int | None = None):
        if margin < 1:
            raise ValueError(f"margin must be >= 1, got {margin}")
        if floor < 2:
            raise ValueError(f"floor must be >= 2, got {floor}")
        if cap is None:
            from repro.tid.wmc import DEFAULT_BUDGET_NODES
            cap = DEFAULT_BUDGET_NODES
        if cap < floor:
            raise ValueError(f"cap {cap} must be >= floor {floor}")
        self.margin = margin
        self.floor = floor
        self.cap = cap
        self._observations: list[_Observation] = []
        self.planned = 0

    @classmethod
    def from_growth_records(cls, records, **kwargs) -> "BudgetPlanner":
        """Seed a planner from growth-probe records — dicts with
        ``clauses`` and ``circuit_nodes`` keys, the exact shape
        ``BENCH_approx.json``/``BENCH_adaptive.json`` carry."""
        planner = cls(**kwargs)
        for record in records:
            planner.observe(record["clauses"], record["circuit_nodes"])
        return planner

    def observe(self, clauses: int, nodes: int) -> None:
        """Record one completed compilation outcome."""
        if clauses < 1 or nodes < 1:
            raise ValueError(
                f"bad observation: {clauses} clauses, {nodes} nodes")
        entry = _Observation(clauses, nodes)
        if entry not in self._observations:
            self._observations.append(entry)
            self._observations.sort(
                key=lambda o: (o.clauses, o.nodes))

    @property
    def observations(self) -> int:
        return len(self._observations)

    def predict_nodes(self, clauses: int) -> int | None:
        """The fitted circuit size for a formula of ``clauses``
        clauses, or None without a trajectory (fewer than two distinct
        clause counts observed)."""
        points = self._observations
        if len({o.clauses for o in points}) < 2:
            return None
        n = len(points)
        xs = [float(o.clauses) for o in points]
        ys = [math.log(o.nodes) for o in points]
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        sxy = sum((x - mean_x) * (y - mean_y)
                  for x, y in zip(xs, ys))
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        predicted = intercept + slope * clauses
        # exp overflows floats around 709; anything near that is
        # "astronomically past any budget" anyway.
        if predicted > 64:
            return 1 << 62
        return max(1, math.ceil(math.exp(predicted)))

    def budget_for(self, formula: CNF,
                   fallback: int | None = None) -> int | None:
        """The planned ``budget_nodes`` for ``formula``: margin times
        the predicted size, clamped to ``[floor, cap]`` — or
        ``fallback`` when no trajectory exists yet."""
        predicted = self.predict_nodes(len(formula))
        if predicted is None:
            return fallback
        self.planned += 1
        return max(self.floor, min(self.cap, self.margin * predicted))

    def growth_records(self) -> list[dict]:
        """The observed trajectory in the record shape
        ``from_growth_records`` consumes, so planners can be merged:
        the service dispatcher unions each worker's records into one
        service-wide planner (``observe`` dedupes on replay)."""
        return [{"clauses": o.clauses, "circuit_nodes": o.nodes}
                for o in self._observations]

    def stats(self) -> dict:
        return {"observations": len(self._observations),
                "planned_budgets": self.planned,
                "margin": self.margin, "floor": self.floor,
                "cap": self.cap}
