"""Flat instruction tapes: the vectorized evaluation engine.

``Circuit.probability_batch`` walks a hash-consed node-object graph —
tuple unpacking, pointer chasing, and a Python-level dispatch per node
per weight vector.  For the sweep-shaped workloads this repo actually
runs (the Eq. 20 endpoint grids, theta-sweeps, interpolation points,
the service's coalesced batches) that interpreter is the dominant cost
once compilation is cached.

This module lowers a compiled :class:`~repro.booleans.circuit.Circuit`
*once* into a :class:`Tape` — parallel arrays of opcodes, operand index
ranges, and a literal→slot table — and evaluates the tape with two
kernels over the identical instruction stream:

* a **float kernel** that processes all k weight vectors of a batch as
  contiguous lanes: one (slots x k) weight matrix, one vector operation
  per instruction.  It uses numpy when importable and falls back to a
  pure-stdlib ``array('d')`` loop, so the core stays dependency-free;
* an **exact kernel** computing in ``Fraction``s, bit-identical to the
  node interpreter (the tape performs the *same* arithmetic — an
  ``("ite", v, hi, lo)`` node lowers to ``p*hi + (1-p)*lo`` spelled as
  ``OR(AND(LIT, hi), AND(NEG, lo))`` — and Fraction arithmetic is
  exact, so association order cannot introduce drift).

Lowering rules (one pass over the topologically ordered node table):

* ``("true",)`` / ``("false",)``  →  ``CONST1`` / ``CONST0``;
* ``("leaf", v)``                 →  ``LIT slot(v)``;
* ``("and", children)``           →  n-ary ``AND`` over child registers;
* ``("ite", v, hi, lo)``          →  ``OR(AND(LIT slot(v), hi),
  AND(NEG slot(v), lo))`` — the OR is *disjoint* (the two products are
  mutually exclusive on ``v``), so addition is the correct semantics.
  Constant branches peephole away: ``lo = false`` yields just
  ``AND(LIT, hi)``, ``hi = true`` yields ``OR(LIT, AND(NEG, lo))``.

``LIT``/``NEG`` registers are hash-consed per slot and the slot table
is assigned in first-use order over the (deterministic) node table, so
the tape — and its ``to_bytes`` serialization — is byte-identical
across runs and ``PYTHONHASHSEED`` values, the same contract the
circuit serialization already honours.

``tape_for_circuit`` memoizes the flattened tape on the circuit object
itself (circuits are immutable, so the tape lives exactly as long as
its circuit does — in particular alongside it in the ``tid.wmc``
memory LRU) and maintains module-level counters (``tape_hits``,
``tape_flattens``, ``tape_bytes``) surfaced through
``repro.tid.wmc.cache_info`` and the service ``stats`` op, so warm
paths can *prove* they never re-flatten.
"""

from __future__ import annotations

import json
import math
import threading

from array import array
from fractions import Fraction
from typing import Sequence

from repro.booleans.circuit import (
    AND, FALSE, HALF, ITE, LEAF, ONE, TRUE, ZERO, Circuit,
    UnsupportedVersionError, WeightOverlay, decode_token, encode_token,
    make_lookup,
)
from repro import obs

try:  # optional accelerator only — every kernel has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

#: Opcodes.  ``arg0``/``arg1`` meaning per op:
#: CONST0/CONST1: unused; LIT: slot index; NEG: source register;
#: AND/OR: [arg0, arg1) operand-register range into ``operands``.
OP_CONST0 = 0
OP_CONST1 = 1
OP_LIT = 2
OP_NEG = 3
OP_AND = 4
OP_OR = 5

#: Serialization format name / version (``Tape.to_bytes``).
TAPE_FORMAT_NAME = "repro-tape"
TAPE_FORMAT_VERSION = 1

_LOCK = threading.Lock()
_STATS = {"tape_hits": 0, "tape_flattens": 0, "tape_bytes": 0}


def tape_stats() -> dict:
    """A snapshot of the flattening counters (merged into
    ``repro.tid.wmc.cache_info``)."""
    with _LOCK:
        return dict(_STATS)


def reset_tape_stats() -> None:
    with _LOCK:
        for key in _STATS:
            _STATS[key] = 0


class Tape:
    """A flattened circuit: parallel instruction arrays plus the
    literal→slot table.  Instruction ``i`` writes register ``i``; the
    arrays are topologically ordered (operands strictly before users),
    mirroring the source circuit's node table."""

    __slots__ = ("ops", "arg0", "arg1", "operands", "slots", "root",
                 "circuit_nodes", "circuit_root", "_slot_index")

    def __init__(self, ops: array, arg0: array, arg1: array,
                 operands: array, slots: tuple, root: int,
                 circuit_nodes: int, circuit_root: int):
        self.ops = ops
        self.arg0 = arg0
        self.arg1 = arg1
        self.operands = operands
        self.slots = slots
        self.root = root
        self.circuit_nodes = circuit_nodes
        self.circuit_root = circuit_root
        self._slot_index = None

    # ------------------------------------------------------------------
    @property
    def n_instructions(self) -> int:
        return len(self.ops)

    @property
    def byte_size(self) -> int:
        """In-memory footprint of the instruction arrays (the unit the
        ``tape_bytes`` counter accumulates)."""
        return (len(self.ops) * self.ops.itemsize
                + len(self.arg0) * self.arg0.itemsize
                + len(self.arg1) * self.arg1.itemsize
                + len(self.operands) * self.operands.itemsize)

    def matches(self, circuit: Circuit) -> bool:
        """Whether this tape was flattened from ``circuit``'s node
        table (the store attaches deserialized tapes only on a match,
        so a stale tape can never answer for a different circuit)."""
        return (self.circuit_nodes == circuit.size
                and self.circuit_root == circuit.root)

    def validate(self) -> None:
        """Check every structural invariant the kernels rely on.

        Raises ``ValueError`` on the first violation: opcode out of
        range, operand-index out of bounds, operands not strictly
        before their users (topological order), n-ary ops with fewer
        than two operands, a root register out of range, duplicate
        entries in the literal-slot table, or a slot table that is not
        in first-use order (the flattener assigns slot ``j`` only
        after slots ``0..j-1`` have appeared, which is what makes the
        serialization byte-identical across hash seeds).

        ``from_bytes`` runs this on every deserialized tape so a
        corrupt-but-parseable ``.tape`` sidecar fails closed (the
        store maps that to a cache miss + unlink) instead of
        producing wrong numbers.  Flattened tapes satisfy it by
        construction.
        """
        ops, arg0, arg1 = self.ops, self.arg0, self.arg1
        operands, slots = self.operands, self.slots
        n = len(ops)
        if not (len(arg0) == len(arg1) == n):
            raise ValueError("corrupt tape: instruction arrays "
                             "disagree in length")
        if not isinstance(self.root, int) or \
                not 0 <= self.root < n:
            raise ValueError(
                f"root register {self.root!r} out of range")
        n_slots = len(slots)
        if len(set(slots)) != n_slots:
            raise ValueError("corrupt tape: duplicate variables in "
                             "the literal-slot table")
        next_slot = 0  # first-use discipline: LITs reveal 0,1,2,...
        for i in range(n):
            op = ops[i]
            if op == OP_LIT:
                slot = arg0[i]
                if not 0 <= slot < n_slots:
                    raise ValueError(f"corrupt tape: instruction {i} "
                                     f"slot out of range")
                if slot > next_slot:
                    raise ValueError(
                        f"corrupt tape: instruction {i} uses slot "
                        f"{slot} before slots 0..{slot - 1} (slot "
                        f"table not in first-use order)")
                if slot == next_slot:
                    next_slot += 1
            elif op == OP_NEG:
                if not 0 <= arg0[i] < i:
                    raise ValueError(f"corrupt tape: instruction {i} "
                                     f"out of topological order")
            elif op in (OP_AND, OP_OR):
                start, stop = arg0[i], arg1[i]
                if not (0 <= start <= stop <= len(operands)):
                    raise ValueError(f"corrupt tape: instruction {i} "
                                     f"operand range out of bounds")
                if stop - start < 2:
                    raise ValueError(f"corrupt tape: instruction {i} "
                                     f"has fewer than two operands")
                for j in range(start, stop):
                    if not 0 <= operands[j] < i:
                        raise ValueError(
                            f"corrupt tape: instruction {i} out of "
                            f"topological order")
            elif op not in (OP_CONST0, OP_CONST1):
                raise ValueError(f"unknown opcode {op!r} at "
                                 f"instruction {i}")
        if next_slot != n_slots:
            raise ValueError(
                f"corrupt tape: {n_slots - next_slot} slot table "
                f"entr{'y' if n_slots - next_slot == 1 else 'ies'} "
                f"never referenced by a LIT instruction")

    def stats(self) -> dict:
        counts = [0] * 6
        for op in self.ops:
            counts[op] += 1
        return {
            "instructions": self.n_instructions,
            "slots": len(self.slots),
            "operand_refs": len(self.operands),
            "lit_ops": counts[OP_LIT],
            "neg_ops": counts[OP_NEG],
            "and_ops": counts[OP_AND],
            "or_ops": counts[OP_OR],
            "bytes": self.byte_size,
        }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, weight_specs: Sequence,
                 numeric: str = "exact",
                 default: Fraction | None = None) -> list:
        """``[Pr(F; w) for w in weight_specs]`` in one pass.

        ``weight_specs`` are raw weight specifications — each a
        mapping, a callable, or ``None``, with mapping misses falling
        back to ``default`` (1/2 when unspecified), exactly as in
        ``Circuit.probability_batch``.  ``numeric="exact"`` runs the
        Fraction kernel (bit-identical to the node interpreter);
        ``numeric="float"`` runs the vectorized lane kernel — numpy
        when importable, stdlib arrays otherwise — and rejects
        non-finite weights with a ``ValueError`` naming the lane.
        """
        with obs.span("kernel", numeric=numeric,
                      lanes=len(weight_specs)):
            if numeric == "exact":
                return self._eval_exact(weight_specs, default)
            if numeric == "float":
                if _np is not None:
                    return self._eval_numpy(weight_specs, default)
                return self._eval_float_fallback(weight_specs, default)
            raise ValueError(
                f"numeric must be 'exact' or 'float', got {numeric!r}")

    def _float_rows(self, weight_specs, default) -> list:
        """Per-slot float rows, conversion-memoized by object identity.

        Sweep grids repeat weight objects heavily across lanes — each
        lane typically overlays a handful of variables on a shared
        base map — and ``float(Fraction)`` costs an order of magnitude
        more than the dict probe that fetched it, so conversions are
        memoized by ``id``.  The memo keeps every source object alive
        for the duration of the pass, so an id cannot be recycled onto
        a different value mid-build.  Mapping specs are probed through
        ``dict.get`` directly (no per-call closure); callables keep
        the node interpreter's calling convention.
        """
        if weight_specs and all(type(spec) is WeightOverlay
                                for spec in weight_specs):
            rows = self._overlay_rows(weight_specs, default)
            if rows is not None:
                return rows
        fallback = HALF if default is None else Fraction(default)
        probes = []
        for spec in weight_specs:
            if callable(spec):
                probes.append(lambda var, _d, spec=spec: spec(var))
            else:
                table = spec if type(spec) is dict else dict(spec or {})
                probes.append(table.get)
        memo: dict = {}
        isfinite = math.isfinite
        rows = []
        for var in self.slots:
            row: list = []
            ap = row.append
            for probe in probes:
                value = probe(var, fallback)
                hit = memo.get(id(value))
                if hit is not None:
                    ap(hit[1])
                    continue
                weight = float(value)
                if not isfinite(weight):
                    raise ValueError(
                        f"non-finite weight {weight!r} for variable "
                        f"{var!r} in float lane {len(row)}; float "
                        f"sweeps require finite weights (use "
                        f"numeric='exact' for symbolic inputs)")
                memo[id(value)] = (value, weight)
                ap(weight)
            rows.append(row)
        return rows

    def _overlay_rows(self, specs, default):
        """Fast fill for an all-``WeightOverlay`` batch sharing one
        base: convert the base column once, replicate it across lanes
        (C-speed list repeat), then poke the per-lane replacements —
        O(slots + overrides) weight probes instead of O(slots x lanes).
        Returns None when lanes disagree on the base object; the
        generic path handles that correctly, just slower."""
        base = specs[0].base
        if any(spec.base is not base for spec in specs):
            return None
        k = len(specs)
        rows = [[weight] * k
                for (weight,) in self._float_rows([base], default)]
        index = self._slot_index
        if index is None:
            index = self._slot_index = {
                var: s for s, var in enumerate(self.slots)}
        isfinite = math.isfinite
        memo: dict = {}
        for lane, spec in enumerate(specs):
            for var, value in spec.pinned.items():
                s = index.get(var)
                if s is None:  # variable absent from the circuit
                    continue
                hit = memo.get(id(value))
                if hit is not None:
                    rows[s][lane] = hit[1]
                    continue
                weight = float(value)
                if not isfinite(weight):
                    raise ValueError(
                        f"non-finite weight {weight!r} for variable "
                        f"{var!r} in float lane {lane}; float sweeps "
                        f"require finite weights (use numeric='exact' "
                        f"for symbolic inputs)")
                memo[id(value)] = (value, weight)
                rows[s][lane] = weight
        return rows

    def _eval_numpy(self, weight_specs, default) -> list:
        np = _np
        k = len(weight_specs)
        if k == 0:
            return []
        w = np.array(self._float_rows(weight_specs, default),
                     dtype=np.float64).reshape(len(self.slots), k)
        ops, arg0, arg1 = self.ops, self.arg0, self.arg1
        operands = self.operands
        regs: list = [None] * len(ops)
        for i in range(len(ops)):
            op = ops[i]
            if op == OP_LIT:
                regs[i] = w[arg0[i]]
            elif op == OP_AND:
                j, stop = arg0[i], arg1[i]
                acc = regs[operands[j]] * regs[operands[j + 1]]
                j += 2
                while j < stop:
                    acc *= regs[operands[j]]
                    j += 1
                regs[i] = acc
            elif op == OP_OR:
                j, stop = arg0[i], arg1[i]
                acc = regs[operands[j]] + regs[operands[j + 1]]
                j += 2
                while j < stop:
                    acc += regs[operands[j]]
                    j += 1
                regs[i] = acc
            elif op == OP_NEG:
                regs[i] = 1.0 - regs[arg0[i]]
            elif op == OP_CONST1:
                regs[i] = np.ones(k)
            else:
                regs[i] = np.zeros(k)
        return [float(x) for x in regs[self.root]]

    def _eval_float_fallback(self, weight_specs, default) -> list:
        """Pure-stdlib float lanes: one ``array('d')`` row per
        register, tight per-instruction loops — no numpy required."""
        k = len(weight_specs)
        if k == 0:
            return []
        slot_rows = [array("d", row)
                     for row in self._float_rows(weight_specs, default)]
        ops, arg0, arg1 = self.ops, self.arg0, self.arg1
        operands = self.operands
        regs: list = [None] * len(ops)
        ones = array("d", [1.0]) * k
        zeros = array("d", bytes(8 * k))
        rng = range(k)
        for i in range(len(ops)):
            op = ops[i]
            if op == OP_LIT:
                regs[i] = slot_rows[arg0[i]]
            elif op == OP_AND:
                j, stop = arg0[i], arg1[i]
                acc = array("d", regs[operands[j]])
                j += 1
                while j < stop:
                    src = regs[operands[j]]
                    for lane in rng:
                        acc[lane] *= src[lane]
                    j += 1
                regs[i] = acc
            elif op == OP_OR:
                j, stop = arg0[i], arg1[i]
                acc = array("d", regs[operands[j]])
                j += 1
                while j < stop:
                    src = regs[operands[j]]
                    for lane in rng:
                        acc[lane] += src[lane]
                    j += 1
                regs[i] = acc
            elif op == OP_NEG:
                src = regs[arg0[i]]
                acc = array("d", bytes(8 * k))
                for lane in rng:
                    acc[lane] = 1.0 - src[lane]
                regs[i] = acc
            elif op == OP_CONST1:
                regs[i] = ones
            else:
                regs[i] = zeros
        return list(regs[self.root])

    def _eval_exact(self, weight_specs, default) -> list:
        """Fraction kernel with the node interpreter's uniform-lane
        optimization: register rows stay scalar until lanes actually
        diverge (sweeps vary a handful of variables, so most of the
        tape is evaluated once, not k times)."""
        k = len(weight_specs)
        if k == 0:
            return []
        lookups = [make_lookup(spec, default) for spec in weight_specs]
        ops, arg0, arg1 = self.ops, self.arg0, self.arg1
        operands, slots = self.operands, self.slots
        # rows[i] is a scalar when register i is uniform across all k
        # lanes, else a length-k list (same layout as probability_batch).
        rows: list = [None] * len(ops)
        for i in range(len(ops)):
            op = ops[i]
            if op == OP_LIT:
                var = slots[arg0[i]]
                ps = [Fraction(lookup(var)) for lookup in lookups]
                rows[i] = ps[0] if all(p == ps[0] for p in ps) else ps
            elif op == OP_AND:
                scalar = ONE
                wide: list = []
                for j in range(arg0[i], arg1[i]):
                    crow = rows[operands[j]]
                    if isinstance(crow, list):
                        wide.append(crow)
                    else:
                        scalar *= crow
                        if not scalar:
                            break
                if not scalar or not wide:
                    rows[i] = scalar
                else:
                    row = [scalar * x for x in wide[0]]
                    for crow in wide[1:]:
                        for lane in range(k):
                            row[lane] *= crow[lane]
                    rows[i] = row
            elif op == OP_OR:
                scalar = ZERO
                wide = []
                for j in range(arg0[i], arg1[i]):
                    crow = rows[operands[j]]
                    if isinstance(crow, list):
                        wide.append(crow)
                    else:
                        scalar += crow
                if not wide:
                    rows[i] = scalar
                else:
                    row = [scalar + x for x in wide[0]]
                    for crow in wide[1:]:
                        for lane in range(k):
                            row[lane] += crow[lane]
                    rows[i] = row
            elif op == OP_NEG:
                src = rows[arg0[i]]
                if isinstance(src, list):
                    rows[i] = [ONE - x for x in src]
                else:
                    rows[i] = ONE - src
            elif op == OP_CONST1:
                rows[i] = ONE
            else:
                rows[i] = ZERO
        root = rows[self.root]
        return list(root) if isinstance(root, list) else [root] * k

    # ------------------------------------------------------------------
    # Serialization (versioned, exact round trip)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """A versioned JSON-lines serialization: header, then one line
        per parallel array.  Byte-identical across hash seeds because
        the flattening order follows the (deterministic) node table."""
        header = {
            "format": TAPE_FORMAT_NAME,
            "version": TAPE_FORMAT_VERSION,
            "root": self.root,
            "instructions": len(self.ops),
            "operand_refs": len(self.operands),
            "circuit_nodes": self.circuit_nodes,
            "circuit_root": self.circuit_root,
            "slots": [encode_token(var) for var in self.slots],
        }
        lines = [json.dumps(header, separators=(",", ":"),
                            sort_keys=True)]
        for arr in (self.ops, self.arg0, self.arg1, self.operands):
            lines.append(json.dumps(list(arr), separators=(",", ":")))
        return ("\n".join(lines) + "\n").encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Tape":
        """Reconstruct a tape serialized by ``to_bytes``.

        Raises ``ValueError`` on any malformed payload (the disk store
        treats that as a cache miss) and ``UnsupportedVersionError``
        on version skew, mirroring ``Circuit.from_bytes``.
        """
        try:
            lines = data.decode("utf-8").splitlines()
            header = json.loads(lines[0])
        except (UnicodeDecodeError, json.JSONDecodeError,
                IndexError) as e:
            raise ValueError(f"not a serialized tape: {e}") from None
        if not isinstance(header, dict) or \
                header.get("format") != TAPE_FORMAT_NAME:
            raise ValueError("not a serialized tape: bad header")
        if header.get("version") != TAPE_FORMAT_VERSION:
            raise UnsupportedVersionError(
                f"unsupported tape format version "
                f"{header.get('version')!r} (this build reads "
                f"{TAPE_FORMAT_VERSION})")
        if len(lines) != 5:
            raise ValueError(
                f"truncated tape: expected 5 lines, found {len(lines)}")
        try:
            slots = tuple(decode_token(obj)
                          for obj in header["slots"])
            ops = array("B", json.loads(lines[1]))
            arg0 = array("q", json.loads(lines[2]))
            arg1 = array("q", json.loads(lines[3]))
            operands = array("q", json.loads(lines[4]))
            root = header["root"]
            count = header["instructions"]
            circuit_nodes = header["circuit_nodes"]
            circuit_root = header["circuit_root"]
        except (KeyError, IndexError, TypeError, ValueError,
                OverflowError, json.JSONDecodeError) as e:
            raise ValueError(f"corrupt tape payload: {e}") from None
        if not (len(ops) == len(arg0) == len(arg1) == count):
            raise ValueError("corrupt tape: array lengths disagree "
                             "with the header")
        if len(operands) != header.get("operand_refs"):
            raise ValueError("corrupt tape: operand table length "
                             "disagrees with the header")
        if not isinstance(circuit_nodes, int) or \
                not isinstance(circuit_root, int):
            raise ValueError("corrupt tape: bad circuit binding")
        tape = cls(ops, arg0, arg1, operands, slots, root,
                   circuit_nodes, circuit_root)
        # Fail closed: a corrupt-but-parseable sidecar must raise here
        # (the store turns that into a cache miss + unlink), never
        # produce wrong numbers.
        tape.validate()
        return tape


# ----------------------------------------------------------------------
# Flattening
# ----------------------------------------------------------------------
class _Flattener:
    """One-pass lowering of a circuit's node table into a tape."""

    def __init__(self):
        self.ops = array("B")
        self.arg0 = array("q")
        self.arg1 = array("q")
        self.operands = array("q")
        self.slot_ids: dict = {}
        self.slots: list = []
        self._lit_regs: dict = {}
        self._neg_regs: dict = {}
        self._pair_regs: dict = {}
        self._const0: int | None = None
        self._const1: int | None = None

    def _emit(self, op: int, a0: int = 0, a1: int = 0) -> int:
        reg = len(self.ops)
        self.ops.append(op)
        self.arg0.append(a0)
        self.arg1.append(a1)
        return reg

    def const0(self) -> int:
        if self._const0 is None:
            self._const0 = self._emit(OP_CONST0)
        return self._const0

    def const1(self) -> int:
        if self._const1 is None:
            self._const1 = self._emit(OP_CONST1)
        return self._const1

    def _slot(self, var) -> int:
        sid = self.slot_ids.get(var)
        if sid is None:
            sid = self.slot_ids[var] = len(self.slots)
            self.slots.append(var)
        return sid

    def lit(self, var) -> int:
        sid = self._slot(var)
        reg = self._lit_regs.get(sid)
        if reg is None:
            reg = self._lit_regs[sid] = self._emit(OP_LIT, sid)
        return reg

    def neg(self, var) -> int:
        sid = self._slot(var)
        reg = self._neg_regs.get(sid)
        if reg is None:
            reg = self._neg_regs[sid] = self._emit(OP_NEG,
                                                   self.lit(var))
        return reg

    def _nary(self, op: int, regs: Sequence[int]) -> int:
        start = len(self.operands)
        self.operands.extend(regs)
        return self._emit(op, start, len(self.operands))

    def product(self, regs: Sequence[int]) -> int:
        if len(regs) == 1:
            return regs[0]
        if len(regs) == 2:
            # Hash-cons the 2-ary products: distinct ITE nodes over the
            # same variable routinely share a (literal, branch) term.
            key = (regs[0], regs[1])
            reg = self._pair_regs.get(key)
            if reg is None:
                reg = self._pair_regs[key] = self._nary(OP_AND, regs)
            return reg
        return self._nary(OP_AND, regs)

    def disjoint_sum(self, regs: Sequence[int]) -> int:
        if len(regs) == 1:
            return regs[0]
        return self._nary(OP_OR, regs)


def flatten_circuit(circuit: Circuit) -> Tape:
    """Lower ``circuit`` into a fresh :class:`Tape` (pure function; use
    :func:`tape_for_circuit` for the cached entry point)."""
    fl = _Flattener()
    nodes = circuit.nodes
    node_reg = [0] * len(nodes)
    for i, node in enumerate(nodes):
        kind = node[0]
        if kind is ITE:
            var = node[1]
            hi, lo = node[2], node[3]
            hi_kind, lo_kind = nodes[hi][0], nodes[lo][0]
            terms = []
            if hi_kind is TRUE:
                terms.append(fl.lit(var))
            elif hi_kind is not FALSE:
                terms.append(fl.product([fl.lit(var), node_reg[hi]]))
            if lo_kind is TRUE:
                terms.append(fl.neg(var))
            elif lo_kind is not FALSE:
                terms.append(fl.product([fl.neg(var), node_reg[lo]]))
            node_reg[i] = fl.disjoint_sum(terms) if terms \
                else fl.const0()
        elif kind is AND:
            regs = []
            short_circuit = False
            for child in node[1]:
                child_kind = nodes[child][0]
                if child_kind is FALSE:
                    short_circuit = True
                    break
                if child_kind is not TRUE:
                    regs.append(node_reg[child])
            if short_circuit:
                node_reg[i] = fl.const0()
            elif regs:
                node_reg[i] = fl.product(regs)
            else:
                node_reg[i] = fl.const1()
        elif kind is LEAF:
            node_reg[i] = fl.lit(node[1])
        elif kind is TRUE:
            node_reg[i] = fl.const1()
        else:
            node_reg[i] = fl.const0()
    return Tape(fl.ops, fl.arg0, fl.arg1, fl.operands,
                tuple(fl.slots), node_reg[circuit.root],
                len(nodes), circuit.root)


# ----------------------------------------------------------------------
# Per-circuit memoization + counters
# ----------------------------------------------------------------------
def peek_tape(circuit: Circuit) -> Tape | None:
    """The tape already attached to ``circuit``, if any (no counter
    side effects)."""
    return circuit._tape


def adopt_tape(circuit: Circuit, tape: Tape) -> bool:
    """Attach a deserialized ``tape`` to ``circuit`` (the warm-store
    path: a matching tape loaded from disk means the service never
    re-flattens).  Returns False — and leaves the circuit untouched —
    if the tape does not match or a tape is already attached."""
    if not tape.matches(circuit):
        return False
    with _LOCK:
        if circuit._tape is not None:
            return False
        circuit._tape = tape
        _STATS["tape_bytes"] += tape.byte_size
    return True


def tape_for_circuit(circuit: Circuit) -> Tape:
    """The memoized tape for ``circuit``: flatten once, reuse forever.

    The tape is stored on the circuit object itself, so the ``tid.wmc``
    memory LRU keeps circuit and tape together and evicts them
    together.  Counters: ``tape_hits`` counts reuses, ``tape_flattens``
    counts actual lowerings, ``tape_bytes`` accumulates the footprint
    of attached tapes.
    """
    with _LOCK:
        tape = circuit._tape
        if tape is not None:
            _STATS["tape_hits"] += 1
            return tape
    with obs.span("flatten"):
        tape = flatten_circuit(circuit)
    with _LOCK:
        if circuit._tape is None:
            circuit._tape = tape
            _STATS["tape_flattens"] += 1
            _STATS["tape_bytes"] += tape.byte_size
        else:
            # Lost a flattening race; count the reuse, drop our copy.
            _STATS["tape_hits"] += 1
        return circuit._tape
