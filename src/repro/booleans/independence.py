"""Finite joint distributions and Lemma B.11.

Lemma B.11: for jointly distributed random variables X, Y, U, V with Y
*binary*,

    (U independent of V given X)  and  (UX independent of V given Y)
        implies   (V independent of Y)  or  (U independent of Y given X).

The paper uses it to prove that migration is symmetric
(Corollary B.12).  The implication fails for non-binary Y, so we model
arbitrary finite joints explicitly and machine-check both the lemma and
the necessity of the binarity hypothesis.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product
from typing import Hashable, Mapping, Sequence

F = Fraction


class FiniteJoint:
    """A joint distribution over named discrete variables.

    ``table`` maps outcome tuples (one value per variable, in
    ``variables`` order) to probabilities summing to 1.
    """

    def __init__(self, variables: Sequence[str],
                 table: Mapping[tuple, Fraction]):
        self.variables = tuple(variables)
        self.table = {outcome: F(p) for outcome, p in table.items()
                      if p != 0}
        total = sum(self.table.values(), F(0))
        if total != 1:
            raise ValueError(f"probabilities sum to {total}, not 1")
        for outcome in self.table:
            if len(outcome) != len(self.variables):
                raise ValueError(f"malformed outcome {outcome}")

    # ------------------------------------------------------------------
    def _index(self, var: str) -> int:
        return self.variables.index(var)

    def probability(self, event: Mapping[str, Hashable]) -> Fraction:
        """Pr(AND_{var} var = value)."""
        indices = {self._index(var): value
                   for var, value in event.items()}
        total = F(0)
        for outcome, p in self.table.items():
            if all(outcome[i] == v for i, v in indices.items()):
                total += p
        return total

    def support(self, var: str) -> list:
        i = self._index(var)
        return sorted({outcome[i] for outcome in self.table}, key=repr)

    # ------------------------------------------------------------------
    def independent(self, left: Sequence[str],
                    right: Sequence[str]) -> bool:
        """U independent of V (as variable groups)."""
        return self.conditionally_independent(left, right, ())

    def conditionally_independent(self, left: Sequence[str],
                                  right: Sequence[str],
                                  given: Sequence[str]) -> bool:
        """U independent of V given Z, by definition:
        Pr(UVZ) Pr(Z) == Pr(UZ) Pr(VZ) for all outcomes."""
        left, right, given = list(left), list(right), list(given)
        supports = [self.support(v) for v in left + right + given]
        for values in iter_product(*supports):
            u_event = dict(zip(left, values[:len(left)]))
            v_event = dict(zip(right,
                               values[len(left):len(left) + len(right)]))
            z_event = dict(zip(given, values[len(left) + len(right):]))
            joint = self.probability({**u_event, **v_event, **z_event})
            pz = self.probability(z_event)
            pu = self.probability({**u_event, **z_event})
            pv = self.probability({**v_event, **z_event})
            if joint * pz != pu * pv:
                return False
        return True


def lemma_b11_conclusion(joint: FiniteJoint, x: str, y: str,
                         u: str, v: str) -> bool:
    """The conclusion of Lemma B.11: (V indep Y) or (U indep Y | X)."""
    return (joint.independent([v], [y])
            or joint.conditionally_independent([u], [y], [x]))


def lemma_b11_hypotheses(joint: FiniteJoint, x: str, y: str,
                         u: str, v: str) -> bool:
    """The hypotheses: (U indep V | X) and (UX indep V | Y)."""
    return (joint.conditionally_independent([u], [v], [x])
            and joint.conditionally_independent([u, x], [v], [y]))


def check_lemma_b11(joint: FiniteJoint, x: str, y: str,
                    u: str, v: str) -> bool:
    """True when the Lemma B.11 implication holds on this joint
    (vacuously when the hypotheses fail).  Requires binary Y to be a
    theorem; callers may probe non-binary Y for counterexamples."""
    if not lemma_b11_hypotheses(joint, x, y, u, v):
        return True
    return lemma_b11_conclusion(joint, x, y, u, v)
