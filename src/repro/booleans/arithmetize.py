"""Arithmetization of monotone Boolean formulas (Section 1.6).

The arithmetization of Y is the unique multilinear polynomial y that
agrees with Y on {0,1}^n; equivalently, y expresses Pr(Y) in terms of the
marginal probabilities of the independent Boolean variables.  Example
from the paper: Y = (R v S) & (S v T) arithmetizes to rt + s - rst.

The computation mirrors an exact weighted model counter run symbolically:
independent components multiply, and otherwise we apply the Shannon
expansion  y = p_X * y[X:=1] + (1 - p_X) * y[X:=0]  on a most-shared
variable, with memoization on the canonical CNF.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.polynomials import Polynomial
from repro.booleans.cnf import CNF
from repro.booleans.connectivity import clause_components


def arithmetize(formula: CNF, name: Callable[[object], str] = str,
                _cache: dict | None = None) -> Polynomial:
    """The arithmetization of ``formula`` as a multilinear polynomial.

    ``name`` maps a Boolean variable token to the polynomial-variable
    name holding its marginal probability (default: ``str``).
    """
    cache: dict[CNF, Polynomial] = {} if _cache is None else _cache
    return _arithmetize(formula, name, cache)


def _arithmetize(formula: CNF, name, cache) -> Polynomial:
    if formula.is_true():
        return Polynomial.one()
    if formula.is_false():
        return Polynomial.zero()
    hit = cache.get(formula)
    if hit is not None:
        return hit

    groups = clause_components(formula)
    if len(groups) > 1:
        result = Polynomial.one()
        for group in groups:
            result = result * _arithmetize(CNF(group), name, cache)
        cache[formula] = result
        return result

    var = _most_shared_variable(formula)
    p = Polynomial.variable(name(var))
    high = _arithmetize(formula.condition(var, True), name, cache)
    low = _arithmetize(formula.condition(var, False), name, cache)
    result = p * high + (Polynomial.one() - p) * low
    cache[formula] = result
    return result


def _most_shared_variable(formula: CNF):
    counts: dict[object, int] = {}
    for clause in formula.clauses:
        for var in clause:
            counts[var] = counts.get(var, 0) + 1
    # Deterministic tie-break on the token's repr.
    return max(counts, key=lambda v: (counts[v], repr(v)))
