"""Monotone Boolean formulas in conjunctive normal form.

Lineages of forall-CNF queries over tuple-independent databases are
monotone CNFs over tuple variables (footnote 4 of the paper); all the
Boolean reasoning in the hardness proofs happens on such formulas.

A clause is a frozenset of variables (a positive disjunction); a CNF is a
set of clauses, kept *minimized by absorption*: no clause is a superset of
another.  Monotone CNFs enjoy two properties the code relies on:

* the absorption-minimal clause set is canonical, so structural equality
  is logical equivalence;
* implication is subsumption: F implies G iff every clause of G contains
  some clause of F.

``CNF.TRUE`` is the empty conjunction; ``CNF.FALSE`` contains the empty
clause.  Variables may be any hashable token (tuple tokens name ground
tuples, e.g. ``('S1', 'u', 'v')``).
"""

from __future__ import annotations

from typing import Iterable, Hashable

Var = Hashable
Clause = frozenset


def _absorb(clauses: Iterable[frozenset]) -> frozenset:
    """Drop clauses that are supersets of other clauses (absorption)."""
    unique = set(map(frozenset, clauses))
    if frozenset() in unique:
        return frozenset({frozenset()})
    by_size = sorted(unique, key=len)
    kept: list[frozenset] = []
    for clause in by_size:
        if not any(other <= clause for other in kept):
            kept.append(clause)
    return frozenset(kept)


class CNF:
    """An immutable, absorption-minimized monotone CNF."""

    __slots__ = ("clauses", "_hash")

    def __init__(self, clauses: Iterable[Iterable[Var]] = ()):
        self.clauses: frozenset[frozenset] = _absorb(
            frozenset(clause) for clause in clauses)
        self._hash: int | None = None

    @classmethod
    def _from_minimized(cls, clauses: Iterable[frozenset]) -> "CNF":
        """Wrap an *already absorption-minimal* set of frozensets.

        Private fast path skipping the O(n^2) ``_absorb`` pass — the
        hottest allocation site in both WMC engines.  The caller must
        guarantee minimality (e.g. the clauses are a subset of a
        minimized CNF's clause set, which stays minimal because
        absorption only ever removes supersets).
        """
        self = cls.__new__(cls)
        self.clauses = frozenset(clauses)
        self._hash = None
        return self

    # ------------------------------------------------------------------
    TRUE: "CNF"
    FALSE: "CNF"

    def is_true(self) -> bool:
        return not self.clauses

    def is_false(self) -> bool:
        return frozenset() in self.clauses

    def variables(self) -> frozenset:
        return frozenset(v for clause in self.clauses for v in clause)

    def __len__(self) -> int:
        return len(self.clauses)

    # ------------------------------------------------------------------
    # Connectives
    # ------------------------------------------------------------------
    def conjoin(self, other: "CNF") -> "CNF":
        if self.is_false() or other.is_false():
            return CNF.FALSE
        return CNF(self.clauses | other.clauses)

    def __and__(self, other: "CNF") -> "CNF":
        return self.conjoin(other)

    def disjoin(self, other: "CNF") -> "CNF":
        """Distribute the disjunction over both clause sets."""
        if self.is_true() or other.is_true():
            return CNF.TRUE
        return CNF(c1 | c2 for c1 in self.clauses for c2 in other.clauses)

    def __or__(self, other: "CNF") -> "CNF":
        return self.disjoin(other)

    @staticmethod
    def conjunction(parts: Iterable["CNF"]) -> "CNF":
        clauses: list[frozenset] = []
        for part in parts:
            if part.is_false():
                return CNF.FALSE
            clauses.extend(part.clauses)
        return CNF(clauses)

    @staticmethod
    def conjunction_disjoint(parts: Iterable["CNF"]) -> "CNF":
        """Conjunction of pairwise *variable-disjoint* minimal CNFs.

        Non-empty clauses over disjoint variable sets can never subsume
        one another, so the union of the clause sets is already minimal
        and the absorption pass can be skipped.  The caller is
        responsible for disjointness.
        """
        clauses: set[frozenset] = set()
        for part in parts:
            if part.is_false():
                return CNF.FALSE
            clauses.update(part.clauses)
        return CNF._from_minimized(clauses)

    @staticmethod
    def disjunction(parts: Iterable["CNF"]) -> "CNF":
        result = CNF.FALSE
        for part in parts:
            result = result.disjoin(part)
        return result

    # ------------------------------------------------------------------
    # Conditioning and evaluation
    # ------------------------------------------------------------------
    def condition(self, var: Var, value: bool) -> "CNF":
        """The cofactor F[var := value]."""
        if value:
            # Dropping clauses from a minimal set keeps it minimal.
            return CNF._from_minimized(
                c for c in self.clauses if var not in c)
        return CNF(c - {var} for c in self.clauses)

    def condition_many(self, assignment: dict) -> "CNF":
        result = self
        for var, value in assignment.items():
            result = result.condition(var, bool(value))
        return result

    def evaluate(self, true_vars: Iterable[Var]) -> bool:
        """Truth value when exactly ``true_vars`` are true."""
        true_set = set(true_vars)
        return all(clause & true_set for clause in self.clauses)

    def implies(self, other: "CNF") -> bool:
        """Monotone-CNF implication via clause subsumption."""
        return all(
            any(mine <= theirs for mine in self.clauses)
            for theirs in other.clauses)

    def equivalent(self, other: "CNF") -> bool:
        return self.clauses == other.clauses

    def rename(self, mapping: dict) -> "CNF":
        return CNF(
            frozenset(mapping.get(v, v) for v in clause)
            for clause in self.clauses)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, CNF):
            return NotImplemented
        return self.clauses == other.clauses

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.clauses)
        return self._hash

    def __repr__(self) -> str:
        if self.is_true():
            return "CNF(TRUE)"
        if self.is_false():
            return "CNF(FALSE)"
        parts = sorted(
            "(" + " | ".join(sorted(map(str, clause))) + ")"
            for clause in self.clauses)
        return "CNF[" + " & ".join(parts) + "]"


CNF.TRUE = CNF()
CNF.FALSE = CNF([[]])
