"""E14 — symmetric databases (Section 1.1's contrast).

Shape expectations: on symmetric TIDs even the #P-hard queries (H0,
RST) evaluate in polynomial time — domain 30 costs milliseconds — while
the general-purpose exact engine is already exponential at domain 3-4.
This is the positive result the paper contrasts its negative answer
against: restricting the *database* can help; restricting the
*probability values* cannot.
"""

from fractions import Fraction

import pytest

from repro.core import catalog
from repro.tid.symmetric import SymmetricTID, symmetric_probability
from repro.tid.wmc import probability

F = Fraction


def stid(n, m, symbols):
    return SymmetricTID(n, m, F(1, 2), F(1, 2),
                        {s: F(1, 2) for s in symbols})


@pytest.mark.parametrize("n", [5, 10, 20, 40])
def test_e14_h0_symmetric_scaling(benchmark, n):
    s = stid(n, n, ["S"])
    value = benchmark(symmetric_probability, catalog.h0(), s)
    assert 0 < value < 1
    benchmark.extra_info["domain"] = n


@pytest.mark.parametrize("n", [5, 10, 20])
def test_e14_rst_symmetric_scaling(benchmark, n):
    q = catalog.rst_query()
    s = stid(n, n, ["S1"])
    value = benchmark(symmetric_probability, q, s)
    assert 0 < value < 1
    benchmark.extra_info["domain"] = n


@pytest.mark.parametrize("n", [2, 3])
def test_e14_wmc_on_same_instances(benchmark, n):
    """The general engine on the same symmetric instances: correct but
    exponential — the crossover is the point."""
    q = catalog.h0()
    s = stid(n, n, ["S"])
    tid = s.materialize()
    value = benchmark(probability, q, tid)
    assert value == symmetric_probability(q, s)
    benchmark.extra_info["domain"] = n
