"""E8/E9 — the Type-I Cook reduction (Theorem 3.1 / 2.9(1)).

Shape expectations: the reduction recovers #Phi exactly for every
instance; oracle-call count grows quadratically in m (one call per
signature); the Theorem 3.4 block-product oracle agrees with the honest
WMC oracle while scaling much further.
"""

import pytest

from repro.core import catalog
from repro.counting.p2cnf import P2CNF
from repro.reduction.type1 import Type1Reduction

FORMULAS = {
    "m1": P2CNF(2, ((0, 1),)),
    "m2-path": P2CNF.path(3),
    "m3-path": P2CNF.path(4),
    "m4-cycle": P2CNF.cycle(4),
    "m4-star": P2CNF.star(5),
    "m5-path": P2CNF.path(6),
}


@pytest.mark.parametrize("phi_name", list(FORMULAS))
def test_e9_reduction_product_oracle(benchmark, phi_name):
    phi = FORMULAS[phi_name]
    reduction = Type1Reduction(catalog.rst_query())

    result = benchmark(reduction.run, phi)
    assert result.model_count == phi.count_satisfying()
    benchmark.extra_info["m"] = phi.m
    benchmark.extra_info["n"] = phi.n
    benchmark.extra_info["oracle_calls"] = result.oracle_calls
    benchmark.extra_info["model_count"] = result.model_count


@pytest.mark.parametrize("phi_name", ["m1", "m2-path"])
def test_e8_reduction_wmc_oracle(benchmark, phi_name):
    """The honest oracle: materialize every block database and run the
    exact weighted model counter."""
    phi = FORMULAS[phi_name]
    reduction = Type1Reduction(catalog.rst_query())

    result = benchmark.pedantic(
        reduction.run, args=(phi,), kwargs={"oracle": "wmc"},
        iterations=1, rounds=1)
    assert result.model_count == phi.count_satisfying()
    benchmark.extra_info["m"] = phi.m


@pytest.mark.parametrize("query_name,ctor", [
    ("rst", catalog.rst_query),
    ("path2", lambda: catalog.path_query(2)),
    ("wide", catalog.wide_final_query),
])
def test_e9_across_queries(benchmark, query_name, ctor):
    """The reduction works through any final Type-I query."""
    phi = P2CNF.path(3)
    reduction = Type1Reduction(ctor())
    result = benchmark(reduction.run, phi)
    assert result.model_count == 5
    benchmark.extra_info["query"] = query_name


def test_e8_oracles_agree(benchmark):
    phi = P2CNF.path(3)
    reduction = Type1Reduction(catalog.rst_query())

    def check():
        for params in [(1, 1), (1, 2), (2, 2)]:
            assert reduction.product_oracle_value(phi, params) == \
                reduction.wmc_oracle_value(phi, params)

    benchmark.pedantic(check, iterations=1, rounds=1)
