"""Batched circuit sweeps vs per-vector evaluation, plus warm starts.

Shape expectations: a sweep varies a few variables (endpoints, theta
tuples) over a fixed lineage, so ``Circuit.probability_batch`` keeps
the unswept part of the circuit scalar and must beat k separate
``probability`` calls; the float fast path must beat both by an order
of magnitude while staying within cross-check tolerance.  Separately, a
populated ``CircuitStore`` must make a cold process (cold memory cache)
run a full sweep with **zero** recompilations, returning Fractions
bit-identical to a fresh compilation.

Runable two ways:

* ``pytest benchmarks/bench_sweep.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_sweep.py [--quick]`` — a self-contained
  smoke run (CI uses ``--quick``) that exits non-zero if batching
  loses, the float path drifts, or a warm start recompiles.
"""

import sys
import tempfile
import time
from fractions import Fraction

import _bench_io

from repro.booleans.circuit import compile_cnf
from repro.core import catalog
from repro.evaluation import endpoint_weight_grid
from repro.reduction.blocks import path_block
from repro.tid import wmc
from repro.tid.lineage import lineage

F = Fraction


def sweep_workload(p=8, k=64):
    """A block lineage plus a k-vector endpoint grid (the Eq. 20 /
    interpolation pattern: two swept variables, the rest fixed) —
    the same grid the ``repro sweep`` CLI ships."""
    query = catalog.rst_query()
    tid = path_block(query, p)
    formula = lineage(query, tid)
    return formula, endpoint_weight_grid(formula, tid, k)


def run_per_vector(circuit, weight_maps):
    return [circuit.probability(w) for w in weight_maps]


def run_batched(circuit, weight_maps):
    return circuit.probability_batch(weight_maps)


def run_batched_float(circuit, weight_maps):
    return circuit.probability_batch(weight_maps, numeric="float")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_per_vector_baseline(benchmark):
    formula, weight_maps = sweep_workload(p=8, k=32)
    circuit = compile_cnf(formula)
    values = benchmark(run_per_vector, circuit, weight_maps)
    assert all(0 < v < 1 for v in values)


def test_batched_sweep(benchmark):
    formula, weight_maps = sweep_workload(p=8, k=32)
    circuit = compile_cnf(formula)
    values = benchmark(run_batched, circuit, weight_maps)
    assert values == run_per_vector(circuit, weight_maps)


def test_batched_float_sweep(benchmark):
    formula, weight_maps = sweep_workload(p=8, k=32)
    circuit = compile_cnf(formula)
    values = benchmark(run_batched_float, circuit, weight_maps)
    exact = run_per_vector(circuit, weight_maps)
    assert all(abs(a - float(t)) < 1e-9
               for a, t in zip(values, exact))


# ----------------------------------------------------------------------
# Script / CI smoke mode
# ----------------------------------------------------------------------
def _best_of(fn, *args, repeats=3):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def check_batched_beats_per_vector(p, k) -> tuple[bool, dict]:
    formula, weight_maps = sweep_workload(p=p, k=k)
    circuit = compile_cnf(formula)
    t_pv, pv = _best_of(run_per_vector, circuit, weight_maps)
    t_b, batched = _best_of(run_batched, circuit, weight_maps)
    t_f, floats = _best_of(run_batched_float, circuit, weight_maps)
    record = {
        "p": p, "k": k,
        "per_vector_ms": round(t_pv * 1e3, 2),
        "batched_ms": round(t_b * 1e3, 2),
        "batched_speedup": round(t_pv / t_b, 2),
        "float_ms": round(t_f * 1e3, 2),
        "float_speedup": round(t_pv / t_f, 2),
    }
    if batched != pv:
        print(f"VALUE MISMATCH: batched != per-vector at p={p} k={k}",
              file=sys.stderr)
        return False, record
    if any(abs(a - float(t)) > 1e-9 for a, t in zip(floats, pv)):
        print(f"FLOAT DRIFT beyond 1e-9 at p={p} k={k}",
              file=sys.stderr)
        return False, record
    verdict = "" if t_b < t_pv else "  <-- batched LOST"
    print(f"p={p:2d} k={k:3d} per-vector {t_pv * 1e3:8.2f}ms  "
          f"batched {t_b * 1e3:8.2f}ms ({t_pv / t_b:4.1f}x)  "
          f"float {t_f * 1e3:7.2f}ms ({t_pv / t_f:5.1f}x){verdict}")
    return t_b < t_pv, record


def check_warm_start(p, k) -> tuple[bool, dict]:
    """A populated disk store + cold memory cache must run the whole
    sweep with zero recompilations and bit-identical Fractions."""
    formula, weight_maps = sweep_workload(p=p, k=k)
    record = {"p": p, "k": k}
    with tempfile.TemporaryDirectory() as tmp:
        try:
            wmc.clear_circuit_cache()
            wmc.set_circuit_store(tmp)
            fresh = wmc.compiled(formula)
            expected = fresh.probability_batch(weight_maps)
            if wmc.cache_info()["compiles"] != 1:
                print("warm-start setup did not compile exactly once",
                      file=sys.stderr)
                return False, record

            wmc.clear_circuit_cache()  # simulate a new process
            start = time.perf_counter()
            circuit = wmc.compiled(formula)
            values = circuit.probability_batch(weight_maps)
            elapsed = time.perf_counter() - start
            record["warm_sweep_ms"] = round(elapsed * 1e3, 2)
            info = wmc.cache_info()
            record["compiles"] = info["compiles"]
            record["store_hits"] = info["store_hits"]
            record["store_misses"] = info["store_misses"]
            if info["compiles"] != 0 or info["store_hits"] != 1:
                print(f"warm start recompiled: {info}", file=sys.stderr)
                return False, record
            if values != expected:
                print("warm start values differ from fresh compilation",
                      file=sys.stderr)
                return False, record
            print(f"warm start: load + {k}-vector sweep in "
                  f"{elapsed * 1e3:.2f}ms, 0 compilations, "
                  f"bit-identical values")
            return True, record
        finally:
            wmc.set_circuit_store(None)
            wmc.clear_circuit_cache()


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    shapes = [(6, 16)] if quick else [(6, 16), (8, 64)]
    ok = True
    records = []
    for p, k in shapes:
        shape_ok, record = check_batched_beats_per_vector(p, k)
        ok &= shape_ok
        records.append(record)
    warm_ok, warm = check_warm_start(6 if quick else 8,
                                     16 if quick else 64)
    ok &= warm_ok
    _bench_io.emit("sweep", {
        "quick": quick,
        "shapes": records,
        "warm_start": warm,
        "ok": bool(ok),
    })
    if not ok:
        print("perf regression: batched sweeps or warm starts broke",
              file=sys.stderr)
        return 1
    print("ok: batched sweeps beat per-vector evaluation and warm "
          "starts skip recompilation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
