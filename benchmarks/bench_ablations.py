"""Ablations of the design choices DESIGN.md calls out.

1. Row selection: the naive {1..m+1}^2 parameter grid vs the multiset
   rank-selected rows the reduction uses (the grid is singular).
2. Finality: running the reduction through a non-final query (the
   override) — Theorem 3.16's guarantee is what finality buys; on the
   intro example the matrix happens to stay non-singular, so the
   ablation documents that finality is sufficient, not necessary.
3. Oracle choice: block-product (Theorem 3.4) vs honest WMC.
4. Lemma 3.19 fast path vs direct WMC for z(p).
"""

from fractions import Fraction

import pytest

from repro.algebra.matrices import Matrix
from repro.core import catalog
from repro.counting.p2cnf import P2CNF
from repro.reduction.block_matrix import z_matrix_direct, z_matrix_power
from repro.reduction.type1 import Type1Reduction

F = Fraction


def test_ablation_naive_grid_is_singular(benchmark):
    """Using the full (p1, p2) grid verbatim yields duplicate rows."""
    reduction = Type1Reduction(catalog.rst_query())
    m = 2

    def build():
        rows = []
        for p1 in range(1, m + 2):
            for p2 in range(1, m + 2):
                y = reduction.y_values((p1, p2))
                rows.append([
                    y["00"] ** k00 * y["10"] ** k1 * y["11"] ** k2
                    for k00 in [0] for k1 in range(m + 1)
                    for k2 in range(m + 1)])
        # Square it up on the first (m+1)^2 columns x rows.
        size = min(len(rows), len(rows[0]))
        return Matrix([r[:size] for r in rows[:size]])

    matrix = benchmark(build)
    assert matrix.is_singular()


def test_ablation_multiset_rows_full_rank(benchmark):
    reduction = Type1Reduction(catalog.rst_query())
    m = 2

    def build():
        return reduction._select_rows(m, max_parameter=16)

    selected = benchmark(build)
    rows = [row for _, row in selected]
    assert not Matrix(rows).is_singular()


def test_ablation_nonfinal_query(benchmark):
    """check_final=False: the reduction may still work for non-final
    unsafe queries — finality is the *guarantee*, not a necessity."""
    reduction = Type1Reduction(catalog.intro_example(), check_final=False)
    phi = P2CNF.path(3)
    result = benchmark(reduction.run, phi)
    assert result.model_count == phi.count_satisfying()


@pytest.mark.parametrize("oracle", ["product", "wmc"])
def test_ablation_oracle_choice(benchmark, oracle):
    reduction = Type1Reduction(catalog.rst_query())
    phi = P2CNF(2, ((0, 1),))
    result = benchmark.pedantic(reduction.run, args=(phi,),
                                kwargs={"oracle": oracle},
                                iterations=1, rounds=1)
    assert result.model_count == 3
    benchmark.extra_info["oracle"] = oracle


@pytest.mark.parametrize("p,mode", [(4, "direct"), (4, "power"),
                                    (6, "direct"), (6, "power")])
def test_ablation_z_computation(benchmark, p, mode):
    query = catalog.rst_query()
    if mode == "direct":
        matrix = benchmark(z_matrix_direct, query, p)
    else:
        base = z_matrix_direct(query, 1)
        matrix = benchmark(z_matrix_power, query, p, base)
    assert matrix[0, 1] == matrix[1, 0]
    benchmark.extra_info["p"] = p
    benchmark.extra_info["mode"] = mode
