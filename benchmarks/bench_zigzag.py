"""E10/F2 — the zig-zag rewriting (Appendix A).

Shape expectations: Pr_Delta(zg(Q)) = Pr_{zg(Delta)}(Q) exactly; zg(Q)
is unsafe of type A-A with length >= 2k.
"""

import random
from fractions import Fraction

import pytest

from repro.core import catalog
from repro.core.safety import is_unsafe, query_length, query_type
from repro.reduction.zigzag import zigzag_database, zigzag_query
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.wmc import probability

F = Fraction

QUERIES = [
    ("rst (I-I)", catalog.rst_query),
    ("path2 (I-I)", lambda: catalog.path_query(2)),
    ("I-II", catalog.unsafe_type1_type2),
    ("C.9 (II-II)", catalog.example_c9),
]


def random_delta(zq, seed):
    rng = random.Random(seed)
    U, V = ["a1"], ["b1"]
    values = [F(1, 2), F(1, 2), F(1)]
    probs = {}
    if any("R" in c.unaries for c in zq.clauses):
        probs.update({r_tuple(u): rng.choice(values) for u in U})
    if any("T" in c.unaries for c in zq.clauses):
        probs.update({t_tuple(v): rng.choice(values) for v in V})
    for symbol in sorted(zq.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(symbol, u, v)] = rng.choice(values)
    return TID(U, V, probs)


@pytest.mark.parametrize("name,ctor", QUERIES)
def test_f2_construction(benchmark, name, ctor):
    query = ctor()
    zq = benchmark(zigzag_query, query)
    assert is_unsafe(zq)
    assert query_length(zq) >= 2 * query_length(query)
    qtype = query_type(zq)
    assert qtype[0] == qtype[1]  # type A-A
    benchmark.extra_info["query"] = name
    benchmark.extra_info["zg_length"] = query_length(zq)
    benchmark.extra_info["zg_clauses"] = len(zq.clauses)


@pytest.mark.parametrize("name,ctor", QUERIES[:3])
def test_e10_probability_preservation(benchmark, name, ctor):
    query = ctor()
    zq = zigzag_query(query)
    delta = random_delta(zq, seed=11)

    def roundtrip():
        lhs = probability(zq, delta)
        rhs = probability(query, zigzag_database(query, delta))
        assert lhs == rhs
        return lhs

    value = benchmark.pedantic(roundtrip, iterations=1, rounds=1)
    benchmark.extra_info["query"] = name
    benchmark.extra_info["pr"] = str(value)
