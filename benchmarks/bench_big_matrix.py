"""E7 — Theorem 3.6: non-singularity of the big matrix.

Shape expectations: under conditions (11)-(13) the h = 1 grid matrix is
non-singular for every m; for h = 2 the reduction's multiset-row system
reaches full rank; violating condition (13) collapses the rank.
"""

from fractions import Fraction

import pytest

from repro.algebra.matrices import Matrix
from repro.reduction.big_matrix import theorem36_matrix

F = Fraction

LAMBDA1, LAMBDA2 = F(1, 2), F(1, 5)
COEFFS = [(F(1), F(1)), (F(2), F(1, 3)), (F(-1), F(1, 7))]


@pytest.mark.parametrize("m", [1, 2, 3, 4])
def test_e7_h1_nonsingular(benchmark, m):
    matrix = benchmark(theorem36_matrix, m, 1, LAMBDA1, LAMBDA2,
                       COEFFS[:2])
    assert not matrix.is_singular()
    benchmark.extra_info["m"] = m
    benchmark.extra_info["size"] = matrix.nrows


@pytest.mark.parametrize("m", [1, 2, 3])
def test_e7_h2_multiset_rank(benchmark, m):
    def y(i, p):
        a, b = COEFFS[i]
        value = F(1)
        for pj in p:
            value *= a * LAMBDA1 ** pj + b * LAMBDA2 ** pj
        return value

    columns = [(k1, k2) for k1 in range(m + 1)
               for k2 in range(m + 1 - k1)]

    def build_and_rank():
        rows = []
        for p2 in range(1, 3 * m + 2):
            for p1 in range(1, p2 + 1):
                rows.append([
                    y(0, (p1, p2)) ** (m - k1 - k2)
                    * y(1, (p1, p2)) ** k1 * y(2, (p1, p2)) ** k2
                    for (k1, k2) in columns])
        return Matrix(rows).rank()

    rank = benchmark(build_and_rank)
    assert rank == len(columns)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["unknowns"] = len(columns)


def test_e7_violated_condition_is_singular(benchmark):
    coeffs = [(F(1), F(1)), (F(3), F(3))]  # proportional: violates (13)
    matrix = benchmark(theorem36_matrix, 2, 1, LAMBDA1, LAMBDA2, coeffs)
    assert matrix.is_singular()
