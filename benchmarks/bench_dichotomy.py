"""E13 — the dichotomy census: PTIME lifted evaluation vs exponential
exact WMC.

Shape expectations: on safe queries the lifted evaluator scales
polynomially with the domain while exact WMC on the same instances
blows up; both agree exactly wherever both run.  Unsafe queries are
classified with their type and length.
"""

import random
from fractions import Fraction

import pytest

from repro.core import catalog
from repro.core.safety import is_safe, query_length, query_type
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lifted import lifted_probability
from repro.tid.wmc import probability

F = Fraction


def random_tid(query, n, seed=0):
    rng = random.Random(seed)
    U = [f"u{i}" for i in range(n)]
    V = [f"v{j}" for j in range(n)]
    values = [F(0), F(1, 2), F(1)]
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(values)
    for v in V:
        probs[t_tuple(v)] = rng.choice(values)
    for s in sorted(query.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = rng.choice(values)
    return TID(U, V, probs)


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_e13_lifted_scaling(benchmark, n):
    """The PTIME side: domain grows, lifted evaluation stays fast."""
    query = catalog.safe_left_only()
    tid = random_tid(query, n, seed=n)
    value = benchmark(lifted_probability, query, tid)
    assert 0 <= value <= 1
    benchmark.extra_info["domain"] = n


@pytest.mark.parametrize("n", [2, 3, 4])
def test_e13_wmc_same_instances(benchmark, n):
    """Exact WMC on the same instances: correct but exponential — the
    crossover against the lifted numbers is the dichotomy's shape."""
    query = catalog.safe_left_only()
    tid = random_tid(query, n, seed=n)
    value = benchmark(probability, query, tid)
    assert value == lifted_probability(query, tid)
    benchmark.extra_info["domain"] = n


def test_e13_census(benchmark):
    """Static analysis of the full catalog is instantaneous."""

    def classify():
        table = []
        for name, ctor, _ in catalog.CENSUS:
            q = ctor()
            table.append((name, is_safe(q), query_type(q),
                          query_length(q)))
        return table

    table = benchmark(classify)
    assert len(table) == len(catalog.CENSUS)
    unsafe_count = sum(1 for _, safe, _, _ in table if not safe)
    benchmark.extra_info["unsafe"] = unsafe_count
    benchmark.extra_info["safe"] = len(table) - unsafe_count
