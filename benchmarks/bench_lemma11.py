"""E1 — Lemma 1.1: non-root assignments in {0, 1/2, 1}.

Shape expectation: the greedy solver always succeeds (the lemma) and
scales linearly in the number of variables.
"""

import random
from fractions import Fraction

import pytest

from repro.algebra.lemma11 import find_nonroot_assignment
from repro.algebra.polynomials import Polynomial

F = Fraction


def random_degree2_polynomial(n_vars: int, seed: int) -> Polynomial:
    rng = random.Random(seed)
    variables = [f"x{i}" for i in range(n_vars)]
    terms = {}
    for _ in range(3 * n_vars):
        mono = tuple((v, rng.randint(1, 2))
                     for v in variables if rng.random() < 0.5)
        terms[mono] = terms.get(mono, F(0)) + rng.randint(-3, 3)
    poly = Polynomial(terms)
    if poly.is_zero():
        return Polynomial.variable(variables[0])
    return poly


@pytest.mark.parametrize("n_vars", [2, 4, 8, 12])
def test_lemma11_scaling(benchmark, n_vars):
    polys = [random_degree2_polynomial(n_vars, seed)
             for seed in range(10)]

    def run():
        results = []
        for poly in polys:
            assignment = find_nonroot_assignment(poly)
            full = {v: assignment.get(v, F(0)) for v in poly.variables()}
            value = poly.evaluate(full)
            assert value != 0
            results.append(value)
        return results

    values = benchmark(run)
    benchmark.extra_info["n_vars"] = n_vars
    benchmark.extra_info["all_nonzero"] = all(v != 0 for v in values)
