"""Machine-readable benchmark artifacts.

Script-mode benchmarks (``python benchmarks/bench_*.py [--quick]``)
call ``emit(name, payload)`` alongside their console report to write a
``BENCH_<name>.json`` of timings, speedup ratios, and verdicts.  CI
uploads these files as workflow artifacts, turning the perf trajectory
into a per-commit time series instead of a pass/fail bit.

The destination directory is ``$BENCH_JSON_DIR`` (created if missing),
defaulting to the current working directory.

Script mode renders the artifacts back for humans:
``python benchmarks/_bench_io.py --summary <dir-or-files>`` prints a
markdown table of every ``BENCH_*.json`` found — CI appends it to
``$GITHUB_STEP_SUMMARY`` so the perf trajectory of a run is readable
on the run page without downloading artifacts.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

from pathlib import Path


def emit(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` must be JSON-serializable; a small provenance header
    (wall-clock time, python version, hash seed) is merged in so
    artifacts from different CI matrix legs stay distinguishable.
    """
    out_dir = Path(os.environ.get("BENCH_JSON_DIR") or ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "unix_time": round(time.time(), 3),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "hashseed": os.environ.get("PYTHONHASHSEED", ""),
        **payload,
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"bench artifact: {path}", file=sys.stderr)
    return path


#: Provenance/bookkeeping keys excluded from the summary headline.
_NON_HEADLINE = ("bench", "unix_time", "python", "implementation",
                 "hashseed", "quick", "ok")


def _collect(paths) -> list:
    """Expand directories to their ``BENCH_*.json`` files, sorted."""
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("BENCH_*.json")))
        else:
            files.append(path)
    return files


def _headline(document: dict) -> str:
    """The artifact's numeric scalars as a compact ``key=value`` run."""
    pieces = []
    for key, value in sorted(document.items()):
        if key in _NON_HEADLINE or isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            pieces.append(f"{key}={value:g}")
    return " ".join(pieces)


def summarize(paths) -> str:
    """Markdown table over ``BENCH_*.json`` files (or directories of
    them) — one row per artifact: identity, verdict, headline numbers.

    Unreadable files become a row, not a crash: the summary step runs
    ``if: always()`` and must never mask the real failure.
    """
    lines = ["| bench | python | hashseed | ok | headline |",
             "| --- | --- | --- | --- | --- |"]
    for path in _collect(paths):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            lines.append(f"| `{path.name}` | — | — | unreadable "
                         f"| {error} |")
            continue
        verdict = document.get("ok")
        lines.append(
            "| {bench} | {python} | {seed} | {ok} | {headline} |"
            .format(
                bench=document.get("bench", path.name),
                python=document.get("python", "—"),
                seed=document.get("hashseed") or "—",
                ok={True: "yes", False: "**NO**"}.get(verdict, "—"),
                headline=_headline(document) or "—"))
    if len(lines) == 2:
        return "no BENCH_*.json artifacts found\n"
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="render BENCH_*.json artifacts as markdown")
    parser.add_argument("--summary", action="store_true", required=True,
                        help="print a markdown summary table")
    parser.add_argument("paths", nargs="*", default=None,
                        help="BENCH_*.json files or directories "
                             "holding them (default: $BENCH_JSON_DIR "
                             "or the current directory)")
    args = parser.parse_args(argv)
    paths = args.paths or [os.environ.get("BENCH_JSON_DIR") or "."]
    print(summarize(paths), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
