"""Machine-readable benchmark artifacts.

Script-mode benchmarks (``python benchmarks/bench_*.py [--quick]``)
call ``emit(name, payload)`` alongside their console report to write a
``BENCH_<name>.json`` of timings, speedup ratios, and verdicts.  CI
uploads these files as workflow artifacts, turning the perf trajectory
into a per-commit time series instead of a pass/fail bit.

The destination directory is ``$BENCH_JSON_DIR`` (created if missing),
defaulting to the current working directory.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

from pathlib import Path


def emit(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` must be JSON-serializable; a small provenance header
    (wall-clock time, python version, hash seed) is merged in so
    artifacts from different CI matrix legs stay distinguishable.
    """
    out_dir = Path(os.environ.get("BENCH_JSON_DIR") or ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "unix_time": round(time.time(), 3),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "hashseed": os.environ.get("PYTHONHASHSEED", ""),
        **payload,
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"bench artifact: {path}", file=sys.stderr)
    return path
