"""Census at scale: static analysis throughput on random queries.

Shape expectations: classification (safety, type, length) is fast
enough to sweep hundreds of random queries per second — the static
side of the dichotomy is genuinely cheap; finality checking costs one
classification per symbol per polarity.
"""

import pytest

from repro.core.final import is_final
from repro.core.generate import GeneratorConfig, random_queries
from repro.core.safety import is_unsafe, query_length, query_type


@pytest.mark.parametrize("count", [100, 400])
def test_classification_sweep(benchmark, count):
    queries = random_queries(count)

    def classify():
        unsafe = 0
        for q in queries:
            if is_unsafe(q):
                unsafe += 1
                query_length(q)
            query_type(q)
        return unsafe

    unsafe = benchmark(classify)
    assert 0 < unsafe < count
    benchmark.extra_info["count"] = count
    benchmark.extra_info["unsafe_fraction"] = round(unsafe / count, 3)


def test_finality_sweep(benchmark):
    queries = [q for q in random_queries(
        60, config=GeneratorConfig(n_symbols=3, max_clauses=3))
        if is_unsafe(q)]

    def check():
        return sum(1 for q in queries if is_final(q))

    final_count = benchmark(check)
    benchmark.extra_info["unsafe_queries"] = len(queries)
    benchmark.extra_info["final"] = final_count
