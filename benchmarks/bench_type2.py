"""E11/E12/F3 — the Type-II machinery (Appendix C).

Shape expectations: the Moebius block-product expansion (Theorem C.19)
equals direct evaluation; coloring counts recovered by the Type-II
system match brute force and solve #PP2CNF (Theorem C.3); the Type-II
zig-zag block (Definition C.21) is built with the dead-end/prefix/suffix
structure of Figure 3.
"""

from fractions import Fraction

import pytest

from repro.core import catalog
from repro.counting.ccp import TOP_COLOR
from repro.counting.pp2cnf import PP2CNF
from repro.reduction.type2 import (
    Type2Reduction,
    conditions_68_70,
    exponential_y_provider,
)
from repro.reduction.type2_blocks import block_pairs, type2_block
from repro.reduction.type2_lattice import TypeIIStructure
from repro.reduction.type2_mobius import (
    mobius_block_probability,
    union_of_blocks,
)
from repro.tid.wmc import probability

F = Fraction


@pytest.mark.parametrize("p", [0, 1, 2])
def test_e11_mobius_formula(benchmark, p):
    query = catalog.example_c9()
    structure = TypeIIStructure(query)
    blocks = {("u", "v"): type2_block(query, p=p)}

    def check():
        lhs = probability(query, union_of_blocks(blocks))
        rhs = mobius_block_probability(structure, blocks)
        assert lhs == rhs
        return lhs

    value = benchmark.pedantic(check, iterations=1, rounds=1)
    benchmark.extra_info["p"] = p
    benchmark.extra_info["pr"] = str(value)


def test_e12_lattice_construction(benchmark):
    query = catalog.example_c15()
    structure = benchmark(TypeIIStructure, query)
    assert structure.m_bar >= 3
    assert structure.n_bar >= 3
    benchmark.extra_info["m_bar"] = structure.m_bar
    benchmark.extra_info["n_bar"] = structure.n_bar


def _make_reduction():
    left, right = ["a1", "a2"], ["b1", "b2"]
    mu_l = {"a1": -1, "a2": 1}
    mu_r = {"b1": -1, "b2": 2}
    pairs = ([(a, b) for a in left for b in right]
             + [(a, TOP_COLOR) for a in left]
             + [(TOP_COLOR, b) for b in right])
    coeffs = {pair: (F(i + 1), F(1, i + 2))
              for i, pair in enumerate(pairs)}
    assert conditions_68_70(coeffs, F(1, 2), F(1, 3))
    return Type2Reduction(left, right, mu_l, mu_r,
                          exponential_y_provider(coeffs, F(1, 2), F(1, 3)))


def test_e12_ccp_recovery(benchmark):
    reduction = _make_reduction()
    phi = PP2CNF(1, 1, ((0, 0),))

    def run():
        return reduction.count_pp2cnf(phi, "a1", "a2", "b1", "b2")

    count = benchmark.pedantic(run, iterations=1, rounds=1)
    assert count == phi.count_satisfying() == 3
    benchmark.extra_info["pp2cnf_count"] = count


@pytest.mark.parametrize("p,branches", [(1, 1), (2, 2), (3, 1)])
def test_f3_block_construction(benchmark, p, branches):
    query = catalog.example_c15()
    block = benchmark(type2_block, query, p, "u", "v", "", branches)
    pairs = block_pairs(query, p, branches=branches)
    # Figure 3 structure: zig-zag chain 2p+1 + prefix/suffix 4*branches
    # + dead ends 2*(p+1)*(m-2).
    from repro.reduction.type2_blocks import dead_end_count
    deads = dead_end_count(query)
    expected = (2 * p + 1) + 4 * branches + 2 * (p + 1) * deads
    assert len(pairs) == expected
    benchmark.extra_info["p"] = p
    benchmark.extra_info["elementary_blocks"] = len(pairs)


def test_e15_exponential_form(benchmark):
    """Eq. 79: the two-eigenvalue recurrence on measured y(p)."""
    from repro.reduction.type2_spectral import verify_exponential_form
    query = catalog.example_c15()

    def check():
        return verify_exponential_form(
            query, "U", frozenset({0}), frozenset({0}), p_max=3)

    ok = benchmark.pedantic(check, iterations=1, rounds=1)
    assert ok
