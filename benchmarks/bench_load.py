"""Closed-loop load harness against a live, hardened service.

The other service benchmark (``bench_service.py``) measures the
amortization story — warm resident server vs cold CLI.  This one
measures what operations people actually see under *concurrency*: N
closed-loop workers (each issues a request, waits for the answer,
immediately issues the next) replaying a mixed
sweep/evaluate/evaluate_batch/estimate workload against a live
socket server running with authentication and quotas enabled — the
deployment shape the multi-tenant hardening exists for.

Reported and gated:

* **tail latency** — p50/p99 per-request milliseconds, overall and
  per op.  The p99 ceiling is the CI tripwire: a lock held across a
  compile, an accidental serialization point, or a quota check doing
  real work will show up here first;
* **throughput** — requests/second across all workers;
* **enforcement** — while the fleet hammers the service, a tokenless
  probe must be refused ``unauthorized`` and a rate-capped tenant
  must trip ``quota-exceeded``; hardening that evaporates under load
  is no hardening at all;
* **stage breakdown** — the server's request-tracing histograms,
  reduced to per-``(op, stage)`` p50/p99, land in the artifact, so a
  p99 regression can be read against *which* stage (queue wait,
  compile, kernel) moved; a sample of raw span trees is exported as
  ``TRACE_sample.jsonl`` next to the JSON.

The workload is deterministic (per-worker seeded RNGs, fixed op mix)
so run-to-run variance is the runner's, not the harness's.  Run
``python benchmarks/bench_load.py [--quick]``; CI uses ``--quick``
and uploads the emitted ``BENCH_load.json``.
"""

import json
import os
import statistics
import sys
import threading
import time

from pathlib import Path

import _bench_io

from repro.cli import _hist_quantile_ms
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ReproServer
from repro.service.tenants import TenantQuota
from repro.tid import wmc

LOAD_TOKEN = "bench-load-token"
PROBE_TOKEN = "bench-probe-token"

#: (op, client kwargs) — the replayed mix.  Weights approximate the
#: sweep-heavy traffic the coalescer was built for, and every shape
#: stays within the two circuits warmed up before timing starts.
MIX = [
    ("sweep", {"query": "(R|S1)(S1|T)", "p": 4, "grid": 8}),
    ("sweep", {"query": "(R|S1)(S1|T)", "p": 4, "grid": 8}),
    ("sweep", {"query": "(R|S1)(S1|S2)(S2|T)", "p": 4, "grid": 8}),
    ("evaluate", {"query": "(R|S1)(S1|T)", "p": 4}),
    ("evaluate", {"query": "(R|S1)(S1|S2)(S2|T)", "p": 4}),
    ("evaluate_batch", {"query": "(R|S1)(S1|T)", "ps": [4]}),
    ("estimate", {"query": "(R|S1)(S1|T)", "p": 4,
                  "epsilon": "1/4", "delta": "1/4"}),
]


def run_worker(address, index, requests, records, errors):
    """One closed-loop client: request, await, repeat — latencies and
    failures land in the shared lists (slot-per-worker, no lock)."""
    import random

    rng = random.Random(0xB10C + index)
    timings = []
    try:
        with ServiceClient(*address, timeout=300,
                           auth=LOAD_TOKEN) as client:
            for _ in range(requests):
                op, kwargs = MIX[rng.randrange(len(MIX))]
                if op == "estimate":
                    kwargs = dict(kwargs, seed=rng.randrange(2**31))
                start = time.perf_counter()
                getattr(client, op)(**kwargs)
                timings.append((op, time.perf_counter() - start))
    except ServiceError as error:
        errors[index] = f"{error.code}: {error}"
    records[index] = timings


def warm_up(address):
    """Pay every compilation in the MIX before the clock starts, so
    the measured distribution is the steady state."""
    with ServiceClient(*address, timeout=300,
                       auth=LOAD_TOKEN) as client:
        done = set()
        for op, kwargs in MIX:
            key = (op, kwargs["query"])
            if key not in done:
                done.add(key)
                if op == "estimate":
                    kwargs = dict(kwargs, seed=1)
                getattr(client, op)(**kwargs)


def check_enforcement(address) -> dict:
    """Auth and quota refusals must hold while the service is busy."""
    out = {"unauthorized_refused": False, "quota_tripped": False}
    with ServiceClient(*address, timeout=300) as tokenless:
        try:
            tokenless.ping()
        except ServiceError as error:
            out["unauthorized_refused"] = error.code == "unauthorized"
    with ServiceClient(*address, timeout=300,
                       auth=PROBE_TOKEN) as probe:
        try:
            for _ in range(8):  # rate=2 per window: must trip here
                probe.ping()
        except ServiceError as error:
            out["quota_tripped"] = error.code == "quota-exceeded"
    return out


def quantile_ms(timings, fraction) -> float:
    ordered = sorted(timings)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index] * 1e3


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    quick = "--quick" in args
    workers = 4 if quick else 8
    per_worker = 40 if quick else 150
    # Gates calibrated on a loaded shared CI runner with wide margin:
    # local p99 is ~10-25ms and throughput is hundreds/s; the gate
    # exists to catch order-of-magnitude regressions (a serialized
    # compile path, a lock across the estimator), not 2x jitter.
    p99_ceiling_ms = 500.0 if quick else 400.0
    throughput_floor = 25.0 if quick else 40.0

    wmc.clear_circuit_cache()
    wmc.set_circuit_store(None)
    quotas = {
        "load": TenantQuota(rate=1_000_000, window=60.0),
        "probe": TenantQuota(rate=2, window=3600.0),
    }
    with ReproServer(
            port=0, window=0.01,
            auth_tokens={LOAD_TOKEN: "load", PROBE_TOKEN: "probe"},
            tenant_quotas=quotas) as server:
        warm_up(server.address)

        records = [None] * workers
        errors = [None] * workers
        threads = [
            threading.Thread(
                target=run_worker,
                args=(server.address, i, per_worker, records, errors))
            for i in range(workers)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        duration = time.perf_counter() - start

        enforcement = check_enforcement(server.address)
        with ServiceClient(*server.address, timeout=300,
                           auth=LOAD_TOKEN) as client:
            stats = client.stats()
            trace_sample = client.trace(limit=32)["traces"]

    failures = [e for e in errors if e]
    if failures:
        print(f"load worker failed: {failures}", file=sys.stderr)
        return 1

    timings = [t for worker in records for t in worker]
    total = len(timings)
    throughput = total / duration
    latencies = [t for _, t in timings]
    per_op = {}
    for op in sorted({op for op, _ in timings}):
        op_lat = [t for o, t in timings if o == op]
        per_op[op] = {
            "requests": len(op_lat),
            "p50_ms": round(quantile_ms(op_lat, 0.50), 3),
            "p99_ms": round(quantile_ms(op_lat, 0.99), 3),
        }
    p50 = quantile_ms(latencies, 0.50)
    p99 = quantile_ms(latencies, 0.99)

    # Server-side stage breakdown from the tracing histograms: the
    # client-observed p99 above says *that* something is slow, this
    # says *where* the time went.  Quantiles are bucket upper bounds.
    stage_breakdown = {}
    histograms = (stats.get("tracing") or {}).get("histograms") or {}
    for op, stages in sorted(histograms.items()):
        for stage, hist in sorted(stages.items()):
            count = hist.get("count", 0)
            buckets = hist.get("buckets") or {}
            stage_breakdown.setdefault(op, {})[stage] = {
                "count": count,
                "sum_ms": hist.get("sum_ms", 0.0),
                "p50_ms": _hist_quantile_ms(buckets, count, 0.50),
                "p99_ms": _hist_quantile_ms(buckets, count, 0.99),
            }

    print(f"closed-loop load: {workers} workers x {per_worker} "
          f"requests in {duration:.2f}s")
    print(f"  throughput  {throughput:8.1f} req/s "
          f"(floor {throughput_floor:g})")
    print(f"  latency     p50 {p50:7.2f}ms   p99 {p99:7.2f}ms "
          f"(ceiling {p99_ceiling_ms:g}ms)")
    for op, row in per_op.items():
        print(f"  {op:<15} {row['requests']:4d} requests   "
              f"p50 {row['p50_ms']:7.2f}ms   "
              f"p99 {row['p99_ms']:7.2f}ms")
    for op, stages in stage_breakdown.items():
        for stage, row in stages.items():
            p50_s = ("-" if row["p50_ms"] is None
                     else f"{row['p50_ms']:7.2f}ms")
            p99_s = ("-" if row["p99_ms"] is None
                     else f"{row['p99_ms']:7.2f}ms")
            print(f"  stage {op:>9}/{stage:<10} "
                  f"{row['count']:5d} spans   p50 {p50_s:>9}   "
                  f"p99 {p99_s:>9}")
    print(f"  enforcement unauthorized_refused="
          f"{enforcement['unauthorized_refused']} "
          f"quota_tripped={enforcement['quota_tripped']}")
    print(f"  server      {stats['cache']['compiles']} compilations, "
          f"{stats['service']['coalesced_requests']} coalesced "
          f"requests, {stats['tenants']['load']['requests']} tenant "
          f"requests")

    ok = (p99 <= p99_ceiling_ms
          and throughput >= throughput_floor
          and enforcement["unauthorized_refused"]
          and enforcement["quota_tripped"])
    _bench_io.emit("load", {
        "quick": quick,
        "workers": workers,
        "requests_per_worker": per_worker,
        "requests_total": total,
        "duration_s": round(duration, 3),
        "throughput_rps": round(throughput, 1),
        "throughput_floor_rps": throughput_floor,
        "p50_ms": round(p50, 3),
        "p99_ms": round(p99, 3),
        "p99_ceiling_ms": p99_ceiling_ms,
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
        "per_op": per_op,
        "stages": stage_breakdown,
        "enforcement": enforcement,
        "compiles": stats["cache"]["compiles"],
        "ok": bool(ok),
    })
    sample_path = Path(os.environ.get("BENCH_JSON_DIR") or ".")
    sample_path.mkdir(parents=True, exist_ok=True)
    sample_path = sample_path / "TRACE_sample.jsonl"
    sample_path.write_text(
        "".join(json.dumps(p, separators=(",", ":"), sort_keys=True)
                + "\n" for p in reversed(trace_sample)),
        encoding="utf-8")
    print(f"trace sample: {sample_path} "
          f"({len(trace_sample)} traces)", file=sys.stderr)
    if not ok:
        print("load gate failed: p99 over ceiling, throughput under "
              "floor, or enforcement did not hold under load",
              file=sys.stderr)
        return 1
    print("ok: tail latency, throughput, and tenant enforcement hold "
          "under concurrent load")
    return 0


if __name__ == "__main__":
    sys.exit(main())
