"""E2/E3 — the small matrix: Lemma 1.2 equivalence and the
Theorem 3.16 / Corollary 3.18 determinant shape.

Shape expectations: det == 0 exactly for disconnecting queries; for
final Type-I queries the determinant factors as c * prod u(1-u) with
c != 0, hence is non-zero at the all-1/2 point.
"""

import pytest

from repro.core import catalog
from repro.reduction.small_matrix import (
    determinant_constant,
    lemma12_check,
    small_matrix_determinant,
)

CONNECTED = [
    ("rst", catalog.rst_query),
    ("path2", lambda: catalog.path_query(2)),
    ("path3", lambda: catalog.path_query(3)),
    ("wide", catalog.wide_final_query),
]


@pytest.mark.parametrize("name,ctor", CONNECTED)
def test_lemma12_connected(benchmark, name, ctor):
    query = ctor()
    det_zero, disconnected = benchmark(lemma12_check, query)
    assert det_zero == disconnected == False  # noqa: E712
    benchmark.extra_info["query"] = name


def test_lemma12_disconnected(benchmark):
    query = catalog.safe_disconnected()
    det_zero, disconnected = benchmark(lemma12_check, query)
    assert det_zero and disconnected


@pytest.mark.parametrize("name,ctor", CONNECTED[:3])
def test_corollary318_constant(benchmark, name, ctor):
    query = ctor()
    c = benchmark(determinant_constant, query)
    assert c != 0
    benchmark.extra_info["query"] = name
    benchmark.extra_info["constant"] = str(c)


def test_determinant_polynomial_size(benchmark):
    """The symbolic determinant stays small for catalog queries."""
    query = catalog.path_query(2)
    det = benchmark(small_matrix_determinant, query)
    assert not det.is_zero()
    benchmark.extra_info["n_variables"] = len(det.variables())
