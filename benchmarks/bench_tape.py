"""Flat-tape float lanes vs the node-graph float fast path.

Shape expectations: on the block-matrix theta-screening family (k
weight lanes over one path-block lineage, each lane pinning a couple
of tuple marginals on a shared base — the ``y_probability_sweep`` /
``link_matrix_sweep`` grid shape) the tape float kernel must beat the
node interpreter's float fast path by **>= 10x** when numpy is
importable: the node walk pays a Python-level lookup, conversion, and
dispatch per node per lane, while the tape pays one base column plus
the overrides and one vector operation per instruction.  The exact
tape kernel must stay *bit-identical* to the node interpreter, and the
tape's serialized bytes must not depend on ``PYTHONHASHSEED``.

Runable two ways:

* ``pytest benchmarks/bench_tape.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_tape.py [--quick]`` — a self-contained
  smoke run (CI uses ``--quick``) that exits non-zero if the tape
  loses its margin, drifts from the exact values, or serializes
  differently under two hash seeds.
"""

import json
import os
import subprocess
import sys
import time
from fractions import Fraction
from pathlib import Path

import _bench_io

from repro.booleans.circuit import WeightOverlay, compile_cnf
from repro.booleans import tape as tape_module
from repro.core import catalog
from repro.reduction.blocks import path_block
from repro.tid.lineage import lineage

F = Fraction
SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The acceptance floor for tape-float over node-float (numpy kernel;
#: the stdlib fallback kernel only has to *win*, not rout).
SPEEDUP_GATE = 10.0


def theta_workload(p=8, k=256):
    """The block-matrix theta-screening family: k weight lanes over
    one path-block lineage, lane j pinning two tuple marginals to
    lane-specific values on the shared block base — the sweep shape
    ``TypeIIStructure.y_probability_sweep`` and ``link_matrix_sweep``
    feed to ``probability_batch``.

    Returns the compiled circuit plus the same lanes in two spellings:
    closures over ``(pinned, base)`` — the shape the sweeps passed to
    the node interpreter before the tape engine existed — and
    ``WeightOverlay`` specs, the shape they pass now.
    """
    query = catalog.rst_query()
    tid = path_block(query, p)
    formula = lineage(query, tid)
    circuit = compile_cnf(formula)
    variables = sorted(circuit.variables(), key=repr)
    n = len(variables)
    base = tid.probability
    overlays = [
        {variables[(2 * j + t) % n]: F(1 + (j + t) % 97, 101)
         for t in range(2)}
        for j in range(k)]
    closure_specs = [
        (lambda tok, pinned=dict(o): pinned.get(tok, base(tok)))
        for o in overlays]
    overlay_specs = [WeightOverlay(base, o) for o in overlays]
    return circuit, closure_specs, overlay_specs


def run_node_float(circuit, specs):
    return circuit.probability_batch(specs, numeric="float",
                                     engine="node")


def run_tape_float(circuit, specs):
    return circuit.probability_batch(specs, numeric="float")


def run_tape_exact(circuit, specs):
    return circuit.probability_batch(specs, numeric="exact",
                                     engine="tape")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_node_float_baseline(benchmark):
    circuit, closure_specs, _ = theta_workload(p=8, k=32)
    values = benchmark(run_node_float, circuit, closure_specs)
    assert all(0 < v < 1 for v in values)


def test_tape_float(benchmark):
    circuit, closure_specs, overlay_specs = theta_workload(p=8, k=32)
    values = benchmark(run_tape_float, circuit, overlay_specs)
    exact = circuit.probability_batch(closure_specs)
    assert all(abs(a - float(t)) < 1e-9 for a, t in zip(values, exact))


def test_tape_exact(benchmark):
    circuit, _, overlay_specs = theta_workload(p=8, k=32)
    values = benchmark(run_tape_exact, circuit, overlay_specs)
    assert values == circuit.probability_batch(overlay_specs,
                                               engine="node")


# ----------------------------------------------------------------------
# Script / CI smoke mode
# ----------------------------------------------------------------------
def _best_of(fn, *args, repeats=3):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def check_tape_beats_node(p, k) -> tuple[bool, dict]:
    """tape-float must beat node-float by ``SPEEDUP_GATE`` on the
    theta family (numpy kernel; the fallback kernel must just win),
    while agreeing with the exact values to 1e-9."""
    circuit, closure_specs, overlay_specs = theta_workload(p=p, k=k)
    start = time.perf_counter()
    tape = tape_module.flatten_circuit(circuit)
    flatten_ms = (time.perf_counter() - start) * 1e3
    t_node, node_floats = _best_of(run_node_float, circuit,
                                   closure_specs)
    t_tape, tape_floats = _best_of(run_tape_float, circuit,
                                   overlay_specs)
    speedup = t_node / t_tape
    have_numpy = tape_module._np is not None
    record = {
        "p": p, "k": k,
        "instructions": tape.n_instructions,
        "flatten_ms": round(flatten_ms, 2),
        "node_float_ms": round(t_node * 1e3, 2),
        "tape_float_ms": round(t_tape * 1e3, 2),
        "speedup": round(speedup, 2),
        "numpy": have_numpy,
        "gate": SPEEDUP_GATE if have_numpy else 1.0,
    }
    exact = circuit.probability_batch(overlay_specs)
    for label, floats in (("node", node_floats), ("tape", tape_floats)):
        if any(abs(a - float(t)) > 1e-9 for a, t in zip(floats, exact)):
            print(f"FLOAT DRIFT beyond 1e-9 in the {label} engine at "
                  f"p={p} k={k}", file=sys.stderr)
            return False, record
    gate = SPEEDUP_GATE if have_numpy else 1.0
    kernel = "numpy" if have_numpy else "stdlib-fallback"
    verdict = "" if speedup >= gate else f"  <-- below {gate}x gate"
    print(f"p={p:2d} k={k:4d} node-float {t_node * 1e3:8.2f}ms  "
          f"tape-float {t_tape * 1e3:7.2f}ms ({speedup:5.1f}x, "
          f"{kernel}, flatten {flatten_ms:.2f}ms){verdict}")
    return speedup >= gate, record


def check_exact_bit_identity(p, k) -> tuple[bool, dict]:
    """tape-exact must equal the node interpreter *exactly* (the same
    Fractions, not approximations) on the same lanes."""
    circuit, _, overlay_specs = theta_workload(p=p, k=k)
    t_node, node_exact = _best_of(
        circuit.probability_batch, overlay_specs)
    t_tape, tape_exact = _best_of(run_tape_exact, circuit,
                                  overlay_specs)
    record = {
        "p": p, "k": k,
        "node_exact_ms": round(t_node * 1e3, 2),
        "tape_exact_ms": round(t_tape * 1e3, 2),
        "identical": tape_exact == node_exact,
    }
    if tape_exact != node_exact:
        print(f"EXACT MISMATCH: tape-exact != node interpreter at "
              f"p={p} k={k}", file=sys.stderr)
        return False, record
    print(f"exact: {k} lanes bit-identical to the node interpreter "
          f"(node {t_node * 1e3:.2f}ms, tape {t_tape * 1e3:.2f}ms)")
    return True, record


_HASHSEED_PROBE = """
import hashlib, json
from fractions import Fraction
from repro.booleans.circuit import WeightOverlay, compile_cnf
from repro.booleans.tape import flatten_circuit
from repro.core import catalog
from repro.reduction.blocks import path_block
from repro.tid.lineage import lineage

query = catalog.rst_query()
tid = path_block(query, 6)
circuit = compile_cnf(lineage(query, tid))
tape = flatten_circuit(circuit)
variables = sorted(circuit.variables(), key=repr)
specs = [WeightOverlay(tid.probability,
                       {variables[j % len(variables)]:
                        Fraction(j + 1, 19)})
         for j in range(8)]
values = tape.evaluate(specs, numeric="exact")
print(json.dumps({
    "tape_sha256": hashlib.sha256(tape.to_bytes()).hexdigest(),
    "values": [str(v) for v in values],
}))
"""


def _probe(hashseed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
    out = subprocess.run(
        [sys.executable, "-c", _HASHSEED_PROBE], env=env,
        capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


def check_hashseed_determinism() -> tuple[bool, dict]:
    """Tape bytes and tape-exact values must be identical across
    ``PYTHONHASHSEED`` values (the store's warm-start contract)."""
    a, b = _probe("0"), _probe("12345")
    record = {"seeds": ["0", "12345"],
              "tape_sha256": a["tape_sha256"],
              "identical": a == b}
    if a != b:
        print("HASHSEED DRIFT: tape bytes or exact values differ "
              "between PYTHONHASHSEED=0 and 12345", file=sys.stderr)
        return False, record
    print(f"hashseed: tape bytes + exact values identical across "
          f"seeds (sha256 {a['tape_sha256'][:16]}...)")
    return True, record


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    shapes = [(8, 512)] if quick else [(8, 512), (8, 1024), (10, 1024)]
    ok = True
    records = []
    for p, k in shapes:
        shape_ok, record = check_tape_beats_node(p, k)
        ok &= shape_ok
        records.append(record)
    exact_ok, exact = check_exact_bit_identity(8 if quick else 10,
                                               16 if quick else 32)
    ok &= exact_ok
    seed_ok, seeds = check_hashseed_determinism()
    ok &= seed_ok
    _bench_io.emit("tape", {
        "quick": quick,
        "gate": SPEEDUP_GATE,
        "shapes": records,
        "exact": exact,
        "hashseed": seeds,
        "ok": bool(ok),
    })
    if not ok:
        print("perf regression: the tape engine lost its margin, "
              "drifted, or broke determinism", file=sys.stderr)
        return 1
    print("ok: tape-float clears the gate, tape-exact is "
          "bit-identical, serialization is hashseed-stable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
