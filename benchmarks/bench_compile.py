"""Knowledge compilation: compile-once-evaluate-many vs recompute WMC.

Shape expectations: compiling a block-matrix-sized lineage costs about
one run of the recursive Shannon engine, after which every extra weight
vector is a linear circuit pass — so for k >= 4 evaluations the
compiled pipeline must beat k independent recursive runs (the
pre-compilation behaviour of ``cnf_probability``), and the gap must
widen with k.

Runable two ways:

* ``pytest benchmarks/bench_compile.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_compile.py [--quick]`` — a self-contained
  smoke run (used by CI with ``--quick``) that times both pipelines,
  prints the speedup, exits non-zero if compile-once loses at k = 4,
  and writes ``BENCH_compile.json``.
"""

import sys
import time
from fractions import Fraction

import _bench_io

from repro.booleans.circuit import compile_cnf
from repro.core import catalog
from repro.reduction.blocks import path_block
from repro.tid.database import r_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import shannon_probability

F = Fraction
HALF = F(1, 2)


def block_workload(p=8, k=8):
    """A block-matrix-sized lineage plus k endpoint-weight vectors —
    the Eq. 20 grid pattern (interior weights, so neither engine can
    shortcut on 0/1 probabilities)."""
    query = catalog.rst_query()
    tid = path_block(query, p)
    formula = lineage(query, tid)
    base = dict.fromkeys(formula.variables(), HALF)
    r_u, r_v = r_tuple("u"), r_tuple("v")
    weight_maps = []
    for i in range(k):
        weights = dict(base)
        weights[r_u] = F(i + 1, k + 2)
        weights[r_v] = F(k + 1 - i, k + 2)
        weight_maps.append(weights)
    return formula, weight_maps


def run_recursive(formula, weight_maps):
    """k independent recursive WMC runs (recompute every call)."""
    return [shannon_probability(formula, w) for w in weight_maps]


def run_compiled(formula, weight_maps):
    """One fresh compilation + k linear evaluations (no warm cache)."""
    circuit = compile_cnf(formula)
    return [circuit.probability(w) for w in weight_maps]


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_recursive_engine_recomputes(benchmark):
    formula, weight_maps = block_workload(p=8, k=8)
    values = benchmark(run_recursive, formula, weight_maps)
    assert all(0 < v < 1 for v in values)
    benchmark.extra_info["k"] = len(weight_maps)


def test_compile_once_evaluate_many(benchmark):
    formula, weight_maps = block_workload(p=8, k=8)
    values = benchmark(run_compiled, formula, weight_maps)
    assert values == run_recursive(formula, weight_maps)
    benchmark.extra_info["k"] = len(weight_maps)


def test_evaluation_is_linear(benchmark):
    """A single evaluation of an already-compiled circuit."""
    formula, weight_maps = block_workload(p=8, k=1)
    circuit = compile_cnf(formula)
    value = benchmark(circuit.probability, weight_maps[0])
    assert 0 < value < 1
    benchmark.extra_info["circuit_size"] = circuit.size


# ----------------------------------------------------------------------
# Script / CI smoke mode
# ----------------------------------------------------------------------
def _best_of(fn, *args, repeats=3):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    print(f"{'k':>4s} {'recursive':>12s} {'compiled':>12s} "
          f"{'speedup':>8s}")
    failed = False
    records = []
    for k in (1, 4, 8) if quick else (1, 4, 8, 16):
        formula, weight_maps = block_workload(p=8, k=k)
        t_rec, rec = _best_of(run_recursive, formula, weight_maps)
        t_cmp, cmp_ = _best_of(run_compiled, formula, weight_maps)
        if rec != cmp_:
            print(f"VALUE MISMATCH at k={k}", file=sys.stderr)
            return 1
        verdict = ""
        if k >= 4 and t_cmp >= t_rec:
            verdict = "  <-- compile-once LOST"
            failed = True
        print(f"{k:4d} {t_rec * 1e3:10.2f}ms {t_cmp * 1e3:10.2f}ms "
              f"{t_rec / t_cmp:7.1f}x{verdict}")
        records.append({
            "k": k,
            "recursive_ms": round(t_rec * 1e3, 2),
            "compiled_ms": round(t_cmp * 1e3, 2),
            "speedup": round(t_rec / t_cmp, 2),
        })
    _bench_io.emit("compile", {
        "quick": quick,
        "shapes": records,
        "ok": not failed,
    })
    if failed:
        print("perf regression: compilation no longer pays for k >= 4",
              file=sys.stderr)
        return 1
    print("ok: compile-once + k evaluations beats k recursive runs "
          "for every k >= 4")
    return 0


if __name__ == "__main__":
    sys.exit(main())
