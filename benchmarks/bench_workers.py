"""Multi-process scale-out benchmark: dispatcher + worker pool vs
the single-process server.

Exact evaluation is Fraction arithmetic on the compiled circuit —
pure Python, GIL-bound CPU.  ``bench_load.py`` showed the in-process
server's thread pool amortizes *compiles*, but once every circuit is
warm the GIL serializes the evaluations themselves: N closed-loop
clients against one process still get roughly one core of exact
throughput.  ``repro serve --workers N`` exists to break exactly that
ceiling, so this benchmark replays an exact-heavy mixed workload
(warm ``evaluate`` across many distinct formulas and probabilities,
plus ``evaluate_batch`` splits) against

* **solo** — today's in-process ``ReproServer`` (``--workers 0``), and
* **pool** — a ``ReproDispatcher`` routing the same formulas across
  worker processes by ``cnf_fingerprint``,

and reports the aggregate-throughput ratio.  Alongside the numbers it
asserts the things a faster wrong answer would hide:

* **parity** — every (query, p) pair returns the identical exact
  Fraction through both deployments;
* **one span tree across processes** — a traced request through the
  dispatcher must come back as a single merged trace whose spans
  carry ``process="worker-N"`` tags under the dispatcher's ``proxy``
  span (the cross-process hop is observable, not a blind spot).

Gating: parallel speedup needs parallel hardware.  When the runner
grants at least as many CPUs as workers, the ratio is gated at
**>= 2.5x**.  On core-starved runners (CI containers pinned to 1-2
CPUs) the GIL-bound baseline and the worker pool share the same
silicon and the honest expectation is ~1x, so the speedup gate is
waived — recorded as such in the artifact — and only the parity,
trace, and a no-pathological-slowdown floor are enforced.

Run ``python benchmarks/bench_workers.py [--quick]``; CI uses
``--quick`` and uploads the emitted ``BENCH_workers.json``.
"""

import os
import sys
import threading
import time

import _bench_io

from repro.service.client import ServiceClient, ServiceError
from repro.service.dispatch import ReproDispatcher
from repro.service.server import ReproServer
from repro.tid import wmc

POOL_WORKERS = 4
RATIO_FLOOR = 2.5
#: Waived-gate sanity floor: even on one contended core the proxy hop
#: must not collapse throughput (catches accidental serialization in
#: the dispatcher itself, e.g. one lock across all workers).
SANITY_FLOOR = 0.30


def _chain(prefix: str, length: int) -> str:
    """A path query R -> ... -> T with per-prefix internal variables,
    so each prefix/length pair is a distinct ``cnf_fingerprint`` and
    the consistent-hash ring has real routing work to do."""
    names = ["R"] + [f"{prefix}{i}" for i in range(1, length)] + ["T"]
    return "".join(f"({a}|{b})"
                   for a, b in zip(names, names[1:]))


def build_mix(quick: bool):
    """(op, kwargs) entries, exact-heavy: warm single evaluations
    dominate, with batch splits riding along.  Every shape is warmed
    before the clock starts."""
    if quick:
        queries = [_chain(prefix, 8) for prefix in "ABCD"]
        ps = (5, 7)
    else:
        queries = [_chain(prefix, length)
                   for prefix in "ABC" for length in (8, 12)]
        ps = (5, 6, 7)
    mix = []
    for query in queries:
        for p in ps:
            mix.append(("evaluate", {"query": query, "p": p}))
            mix.append(("evaluate", {"query": query, "p": p}))
        mix.append(("evaluate_batch", {"query": query,
                                       "ps": list(ps)}))
    return mix


def warm_up(address, mix) -> dict:
    """Pay every compilation before timing; returns the exact values
    so the two deployments can be checked for parity."""
    values = {}
    with ServiceClient(*address, timeout=300) as client:
        for op, kwargs in mix:
            if op != "evaluate":
                continue
            key = (kwargs["query"], kwargs["p"])
            if key not in values:
                result = client.evaluate(**kwargs)
                values[key] = (result["engine"], result["value"])
        # Batches reuse the warmed circuits; run one to prime the
        # dispatcher's split path too.
        op, kwargs = next(entry for entry in mix
                          if entry[0] == "evaluate_batch")
        client.evaluate_batch(**kwargs)
    return values


def run_client(address, index, requests, mix, records, errors):
    """One closed-loop client: request, await, repeat."""
    import random

    rng = random.Random(0xF1EE7 + index)
    timings = []
    try:
        with ServiceClient(*address, timeout=300) as client:
            for _ in range(requests):
                op, kwargs = mix[rng.randrange(len(mix))]
                start = time.perf_counter()
                getattr(client, op)(**kwargs)
                timings.append((op, time.perf_counter() - start))
    except ServiceError as error:
        errors[index] = f"{error.code}: {error}"
    records[index] = timings


def measure(address, clients, per_client, mix):
    """Aggregate closed-loop throughput and latency over the fleet."""
    records = [None] * clients
    errors = [None] * clients
    threads = [
        threading.Thread(
            target=run_client,
            args=(address, i, per_client, mix, records, errors))
        for i in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - start
    failures = [e for e in errors if e]
    if failures:
        raise SystemExit(f"bench client failed: {failures}")
    timings = [t for worker in records for t in worker]
    return {
        "duration_s": duration,
        "requests": len(timings),
        "throughput_rps": len(timings) / duration,
        "latencies": [t for _, t in timings],
    }


def quantile_ms(timings, fraction) -> float:
    ordered = sorted(timings)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index] * 1e3


def check_cross_process_trace(address, mix) -> dict:
    """One traced request through the dispatcher must merge into a
    single span tree covering both processes."""
    _, kwargs = next(entry for entry in mix if entry[0] == "evaluate")
    with ServiceClient(*address, timeout=300) as client:
        client.call("evaluate", trace="bench-workers-xproc", **kwargs)
        fetched = client.trace(id="bench-workers-xproc")
    if fetched["count"] != 1:
        return {"ok": False, "reason": "trace not fetchable by id"}
    spans = fetched["traces"][0]["spans"]
    names = {s["name"] for s in spans}
    worker_spans = [
        s for s in spans
        if str(s.get("tags", {}).get("process", ""))
        .startswith("worker-")]
    ids = {s["id"] for s in spans}
    grafted = all(s["parent"] in ids for s in worker_spans)
    ok = ({"dispatch", "proxy", "evaluate"} <= names
          and bool(worker_spans) and grafted)
    return {
        "ok": ok,
        "spans": len(spans),
        "worker_spans": len(worker_spans),
        "stages": sorted(names),
    }


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    quick = "--quick" in args
    clients = 4 if quick else 8
    per_client = 15 if quick else 50

    # A disk store would let both deployments trade CPU for I/O and
    # muddy the comparison; both run memory-only.
    os.environ.pop("REPRO_CIRCUIT_STORE", None)
    wmc.set_circuit_store(None)
    wmc.clear_circuit_cache()

    mix = build_mix(quick)
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:
        cpus = os.cpu_count() or 1
    gated = cpus >= POOL_WORKERS
    gate_reason = (
        f"{cpus} cpus >= {POOL_WORKERS} workers: ratio gated at "
        f">= {RATIO_FLOOR}x" if gated else
        f"only {cpus} cpu(s) for {POOL_WORKERS} workers: speedup "
        f"gate waived (GIL-bound baseline and pool share the same "
        f"cores), sanity floor {SANITY_FLOOR}x applies")

    print(f"workers bench: {len(mix)} mix entries, {clients} clients "
          f"x {per_client} requests, {cpus} cpu(s)")

    with ReproServer(port=0, window=0.0) as solo_server:
        solo_values = warm_up(solo_server.address, mix)
        solo = measure(solo_server.address, clients, per_client, mix)

    with ReproDispatcher(port=0, workers=POOL_WORKERS,
                         window=0.0) as pool_server:
        pool_values = warm_up(pool_server.address, mix)
        pool = measure(pool_server.address, clients, per_client, mix)
        trace_check = check_cross_process_trace(
            pool_server.address, mix)
        with ServiceClient(*pool_server.address,
                           timeout=300) as client:
            stats = client.stats()

    parity_ok = solo_values == pool_values and all(
        engine == "exact" for engine, _ in solo_values.values())
    ratio = pool["throughput_rps"] / solo["throughput_rps"]
    resident = [row["resident_fingerprints"]
                for row in stats.get("workers", [])]

    print(f"  solo  {solo['requests']:5d} requests in "
          f"{solo['duration_s']:6.2f}s  "
          f"{solo['throughput_rps']:7.1f} req/s   "
          f"p50 {quantile_ms(solo['latencies'], 0.5):7.2f}ms   "
          f"p99 {quantile_ms(solo['latencies'], 0.99):7.2f}ms")
    print(f"  pool  {pool['requests']:5d} requests in "
          f"{pool['duration_s']:6.2f}s  "
          f"{pool['throughput_rps']:7.1f} req/s   "
          f"p50 {quantile_ms(pool['latencies'], 0.5):7.2f}ms   "
          f"p99 {quantile_ms(pool['latencies'], 0.99):7.2f}ms")
    print(f"  ratio {ratio:5.2f}x aggregate throughput "
          f"({POOL_WORKERS} workers)")
    print(f"  gate  {gate_reason}")
    print(f"  parity {'ok' if parity_ok else 'FAILED'} over "
          f"{len(solo_values)} (query, p) pairs, all exact")
    print(f"  trace {'ok' if trace_check['ok'] else 'FAILED'}: "
          f"{trace_check.get('worker_spans', 0)} worker-process "
          f"spans merged into one tree of "
          f"{trace_check.get('spans', 0)}")
    print(f"  routing resident fingerprints per worker: {resident}")

    floor = RATIO_FLOOR if gated else SANITY_FLOOR
    ok = (parity_ok and trace_check["ok"] and ratio >= floor)
    _bench_io.emit("workers", {
        "quick": quick,
        "cpus": cpus,
        "pool_workers": POOL_WORKERS,
        "clients": clients,
        "requests_per_client": per_client,
        "mix_entries": len(mix),
        "distinct_pairs": len(solo_values),
        "solo_rps": round(solo["throughput_rps"], 1),
        "pool_rps": round(pool["throughput_rps"], 1),
        "ratio": round(ratio, 3),
        "ratio_floor": floor,
        "speedup_gated": gated,
        "gate_reason": gate_reason,
        "solo_p50_ms": round(quantile_ms(solo["latencies"], 0.5), 3),
        "solo_p99_ms": round(quantile_ms(solo["latencies"], 0.99), 3),
        "pool_p50_ms": round(quantile_ms(pool["latencies"], 0.5), 3),
        "pool_p99_ms": round(quantile_ms(pool["latencies"], 0.99), 3),
        "parity_ok": bool(parity_ok),
        "cross_process_trace": trace_check,
        "resident_per_worker": resident,
        "ok": bool(ok),
    })
    if not ok:
        print("workers gate failed: ratio under floor, parity "
              "mismatch, or no merged cross-process trace",
              file=sys.stderr)
        return 1
    print("ok: worker pool parity, merged cross-process tracing, "
          "and throughput hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
