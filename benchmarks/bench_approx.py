"""Budgeted approximate WMC vs exact compilation on blow-up lineages.

The workload is a family of random bipartite monotone 2-CNFs — n left
and n right variables, each left variable in 4 clauses ``(x_i | y_j)``
with seeded-random partners.  This is exactly the #PP2CNF shape behind
the paper's hardness reductions, and the d-DNNF compiler's circuit for
it grows super-linearly in n (empirically ~exponentially: the clause
count grows 2x across the probe range below while the node count grows
>30x).  Shape expectations:

* circuit sizes across the probe range confirm super-linear growth;
* at the blow-up size, ``cnf_probability_auto`` under a node budget
  must answer via the estimator (``engine == "estimate"``), its
  Hoeffding interval must contain the exact value (computed once,
  unbudgeted, as ground truth), and the whole budgeted path —
  abort-at-budget plus sampling — must beat exact compilation.

Runable two ways:

* ``pytest benchmarks/bench_approx.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_approx.py [--quick]`` — a self-contained
  smoke run (CI uses ``--quick``) that exits non-zero if any of the
  expectations above fail, and writes ``BENCH_approx.json``.
"""

import random
import sys
import time

from fractions import Fraction

import _bench_io

from repro.booleans.approximate import estimate_probability
from repro.booleans.cnf import CNF
from repro.booleans.circuit import compile_cnf
from repro.tid import wmc

F = Fraction

#: Marginal giving the family a mid-range Pr(F): each clause fails
#: with probability 1/100, so Pr(F) sits around e^(-|clauses|/100).
WEIGHT = F(9, 10)
EPSILON = F(1, 20)
DELTA = F(1, 20)


def blowup_formula(n: int, degree: int = 4, seed: int = 7) -> CNF:
    """A random bipartite monotone 2-CNF over 2n variables (seeded, so
    every run and every hash seed sees the same formula)."""
    rng = random.Random(seed)
    clauses = set()
    for i in range(n):
        for j in rng.sample(range(n), degree):
            clauses.add((("x", i), ("y", j)))
    return CNF(sorted(clauses))


def weights(_var) -> Fraction:
    return WEIGHT


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_exact_compilation_blowup(benchmark):
    formula = blowup_formula(24)
    circuit = benchmark(compile_cnf, formula)
    assert 0 < circuit.probability(weights) < 1


def test_estimator_flat_cost(benchmark):
    formula = blowup_formula(24)
    estimate = benchmark(
        estimate_probability, formula, weights, EPSILON, DELTA, 0)
    exact = compile_cnf(formula).probability(weights)
    assert estimate.contains(exact)


# ----------------------------------------------------------------------
# Script / CI smoke mode
# ----------------------------------------------------------------------
def check_growth(sizes: list[int]) -> tuple[bool, list[dict]]:
    """Compile the probe range; the circuit must grow super-linearly
    in the clause count across it."""
    records = []
    for n in sizes:
        formula = blowup_formula(n)
        start = time.perf_counter()
        circuit = compile_cnf(formula)
        elapsed = time.perf_counter() - start
        records.append({
            "n": n,
            "clauses": len(formula),
            "circuit_nodes": circuit.size,
            "compile_ms": round(elapsed * 1e3, 2),
        })
        print(f"n={n:3d} clauses={len(formula):4d} "
              f"circuit={circuit.size:7d} nodes  "
              f"compile {elapsed * 1e3:8.1f}ms")
    first, last = records[0], records[-1]
    clause_ratio = last["clauses"] / first["clauses"]
    node_ratio = last["circuit_nodes"] / first["circuit_nodes"]
    ok = node_ratio > 2 * clause_ratio
    if not ok:
        print(f"NOT SUPER-LINEAR: clauses grew {clause_ratio:.1f}x but "
              f"the circuit only {node_ratio:.1f}x", file=sys.stderr)
    return ok, records


def check_auto_beats_exact(n: int, budget_nodes: int
                           ) -> tuple[bool, dict]:
    """At the blow-up size: the auto path must degrade to the
    estimator, stay inside its stated error bound, and beat exact
    compilation end to end."""
    formula = blowup_formula(n)
    wmc.clear_circuit_cache()

    start = time.perf_counter()
    circuit = compile_cnf(formula)
    exact_value = circuit.probability(weights)
    t_exact = time.perf_counter() - start

    wmc.clear_circuit_cache()
    start = time.perf_counter()
    answer = wmc.cnf_probability_auto(
        formula, weights, budget_nodes=budget_nodes,
        epsilon=EPSILON, delta=DELTA, rng=0)
    t_auto = time.perf_counter() - start

    record = {
        "n": n,
        "budget_nodes": budget_nodes,
        "circuit_nodes": circuit.size,
        "exact_ms": round(t_exact * 1e3, 2),
        "auto_ms": round(t_auto * 1e3, 2),
        "speedup": round(t_exact / t_auto, 2),
        "engine": answer.engine,
        "exact_value": float(exact_value),
        "estimate": float(answer.value),
        "samples": answer.estimate.samples if answer.estimate else 0,
        "interval_low": float(answer.estimate.low)
        if answer.estimate else None,
        "interval_high": float(answer.estimate.high)
        if answer.estimate else None,
    }
    print(f"n={n}: exact {t_exact * 1e3:.1f}ms "
          f"(circuit {circuit.size} nodes > budget {budget_nodes})  "
          f"auto {t_auto * 1e3:.1f}ms ({record['speedup']}x) "
          f"via {answer.engine}")
    if answer.engine != "estimate":
        print(f"AUTO DID NOT DEGRADE: circuit of {circuit.size} nodes "
              f"compiled under a budget of {budget_nodes}",
              file=sys.stderr)
        return False, record
    contains = answer.estimate.contains(exact_value)
    record["interval_contains_exact"] = contains
    print(f"      estimate {float(answer.value):.4f} in "
          f"[{float(answer.estimate.low):.4f}, "
          f"{float(answer.estimate.high):.4f}], "
          f"exact {float(exact_value):.4f} "
          f"({'inside' if contains else 'OUTSIDE'})")
    if not contains:
        print("ESTIMATE INTERVAL MISSED the exact value",
              file=sys.stderr)
        return False, record
    if t_auto >= t_exact:
        print("AUTO LOST to exact compilation", file=sys.stderr)
        return False, record
    return True, record


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    probe = [16, 24, 32] if quick else [16, 24, 32, 36]
    blowup_n = 32 if quick else 36
    ok_growth, growth = check_growth(probe)
    ok_auto, blowup = check_auto_beats_exact(blowup_n,
                                             budget_nodes=2000)
    ok = ok_growth and ok_auto
    _bench_io.emit("approx", {
        "quick": quick,
        "growth": growth,
        "blowup": blowup,
        "ok": ok,
    })
    if not ok:
        print("perf regression: the budgeted estimator no longer "
              "covers blow-up lineages", file=sys.stderr)
        return 1
    print("ok: circuits blow up super-linearly and the budgeted "
          "estimator answers within bounds, faster than exact "
          "compilation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
