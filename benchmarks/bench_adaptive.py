"""Adaptive estimation vs the fixed-n Hoeffding estimator.

Three shape expectations, each a regression gate:

* **Sample reduction** — on a family of low-variance lineages (path
  blocks with near-one tuple marginals, exactly the easy-but-past-
  budget shape a production mix is full of), the sequential
  empirical-Bernstein estimator must stop with **>= 3x fewer samples**
  than the Hoeffding worst case at the *same* (epsilon, delta), with
  every interval still containing the exact probability.

* **Relative error on small probabilities** — on a small-Pr(F)
  lineage, the self-normalized importance sampler must achieve a
  strictly better relative half-width than the plain estimator gets
  from the same number of draws (the additive bound is uninformative
  there: its relative error exceeds 1).

* **Budget planning** — a ``BudgetPlanner`` seeded with the growth
  trajectory of ``bench_approx``'s blow-up family must plan budgets
  that (a) admit every easy formula it has seen grow from and (b)
  abort the blow-up size *below* the cost of compiling it.

Runable two ways:

* ``pytest benchmarks/bench_adaptive.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_adaptive.py [--quick]`` — self-contained
  smoke run (CI uses ``--quick``), exits non-zero on any failed
  expectation, writes ``BENCH_adaptive.json``.
"""

import sys
import time

from fractions import Fraction

import _bench_io

from repro.booleans.adaptive import (
    BudgetPlanner,
    adaptive_estimate_probability,
    importance_estimate_probability,
)
from repro.booleans.approximate import (
    estimate_probability,
    hoeffding_sample_count,
)
from repro.booleans.circuit import compile_cnf
from repro.core.catalog import rst_query
from repro.reduction.blocks import path_block
from repro.tid.lineage import lineage

F = Fraction

#: Equal-guarantee comparison point: tight enough that the Hoeffding
#: count is in the tens of thousands, where variance adaptivity pays.
EPSILON = F(1, 100)
DELTA = F(1, 20)

#: Near-one tuple marginals make Pr(Q) close to 1 and the Bernoulli
#: variance tiny — the regime the Hoeffding bound cannot exploit.
EASY_WEIGHT = F(99, 100)


def low_variance_workloads(ps):
    """(label, formula, weights) per path-block length: one lineage
    family, every tuple at EASY_WEIGHT."""
    query = rst_query()
    out = []
    for p in ps:
        tid = path_block(query, p)
        formula = lineage(query, tid)
        weights = {var: EASY_WEIGHT for var in formula.variables()}
        out.append((f"B_{p}", formula, weights))
    return out


def small_probability_workload(p: int):
    """A small-Pr(F) lineage: the block family at its own 1/2 weights,
    where Pr(Q) decays geometrically in the block length (~0.032 at
    p=4, ~0.014 at p=5)."""
    query = rst_query()
    tid = path_block(query, p)
    formula = lineage(query, tid)
    return formula, tid.probability


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_adaptive_low_variance(benchmark):
    _, formula, weights = low_variance_workloads([3])[0]
    estimate = benchmark(adaptive_estimate_probability, formula,
                         weights, EPSILON, DELTA, 0)
    assert estimate.samples < hoeffding_sample_count(EPSILON, DELTA)


def test_hoeffding_fixed_cost(benchmark):
    _, formula, weights = low_variance_workloads([3])[0]
    estimate = benchmark(estimate_probability, formula, weights,
                         F(1, 20), DELTA, 0)
    assert estimate.samples == hoeffding_sample_count(F(1, 20), DELTA)


# ----------------------------------------------------------------------
# Script / CI smoke mode
# ----------------------------------------------------------------------
def check_sample_reduction(ps) -> tuple[bool, list[dict]]:
    """>= 3x fewer samples than the Hoeffding count at equal
    (EPSILON, DELTA) on every low-variance workload, intervals exact."""
    worst = hoeffding_sample_count(EPSILON, DELTA)
    ok = True
    records = []
    for label, formula, weights in low_variance_workloads(ps):
        exact = compile_cnf(formula).probability(weights)
        start = time.perf_counter()
        estimate = adaptive_estimate_probability(
            formula, weights, EPSILON, DELTA, rng=0)
        elapsed = time.perf_counter() - start
        reduction = worst / estimate.samples
        contains = estimate.contains(exact)
        records.append({
            "workload": label,
            "clauses": len(formula),
            "exact": float(exact),
            "estimate": float(estimate.estimate),
            "epsilon_achieved": float(estimate.epsilon),
            "samples": estimate.samples,
            "hoeffding_samples": worst,
            "reduction": round(reduction, 2),
            "interval_contains_exact": contains,
            "estimate_ms": round(elapsed * 1e3, 2),
        })
        print(f"{label}: {estimate.samples:6d} samples vs "
              f"{worst} Hoeffding ({reduction:.1f}x fewer), "
              f"interval +/- {float(estimate.epsilon):.4g} "
              f"({'contains' if contains else 'MISSES'} exact)")
        if not contains:
            print(f"{label}: INTERVAL MISSED the exact value",
                  file=sys.stderr)
            ok = False
        if estimate.epsilon > EPSILON:
            print(f"{label}: interval wider than epsilon",
                  file=sys.stderr)
            ok = False
        if reduction < 3:
            print(f"{label}: reduction {reduction:.1f}x is below the "
                  f"3x gate", file=sys.stderr)
            ok = False
    return ok, records


def check_relative_error(quick: bool) -> tuple[bool, dict]:
    """The importance sampler's relative half-width on a small
    probability meets its 1/2 target and beats what the additive
    Hoeffding bound at the same epsilon can ever imply."""
    formula, weights = small_probability_workload(4 if quick else 5)
    exact = compile_cnf(formula).probability(weights)
    epsilon, delta = F(1, 50), F(1, 10)
    target = F(1, 2)
    start = time.perf_counter()
    estimate = importance_estimate_probability(
        formula, weights, epsilon, delta, rng=0,
        relative_error=target)
    elapsed = time.perf_counter() - start
    # The additive bound's best relative claim at the same epsilon.
    hoeffding_relative = (float(epsilon / (exact - epsilon))
                          if exact > epsilon else float("inf"))
    achieved = (float(estimate.relative_error)
                if estimate.relative_error is not None
                else float("inf"))
    contains = estimate.contains(exact)
    record = {
        "exact": float(exact),
        "estimate": float(estimate.estimate),
        "samples": estimate.samples,
        "relative_target": str(target),
        "relative_achieved": achieved,
        "relative_from_hoeffding_epsilon": hoeffding_relative,
        "interval_contains_exact": contains,
        "estimate_ms": round(elapsed * 1e3, 2),
    }
    print(f"small-Pr: exact {float(exact):.4f}, relative half-width "
          f"{achieved:.3f} (additive bound implies "
          f"{hoeffding_relative:.3f}) in {estimate.samples} samples")
    ok = (contains and achieved <= float(target)
          and achieved < hoeffding_relative)
    if not ok:
        print("IMPORTANCE SAMPLER failed its relative-error target",
              file=sys.stderr)
    return ok, record


def check_budget_planning(quick: bool) -> tuple[bool, dict]:
    """A planner seeded with bench_approx's growth trajectory must
    admit the probe sizes and abort the blow-up size cheaply."""
    from bench_approx import blowup_formula

    probe = [12, 16, 20, 24]
    blowup_n = 32 if quick else 36
    records = []
    planner = BudgetPlanner(margin=4, floor=256, cap=20_000)
    for n in probe:
        formula = blowup_formula(n)
        circuit = compile_cnf(formula)
        planner.observe(len(formula), circuit.size)
        records.append({"n": n, "clauses": len(formula),
                        "circuit_nodes": circuit.size})
    admitted = all(
        planner.budget_for(blowup_formula(n)) >= record["circuit_nodes"]
        for n, record in zip(probe, records))
    blowup = blowup_formula(blowup_n)
    planned = planner.budget_for(blowup)
    start = time.perf_counter()
    circuit = compile_cnf(blowup)
    t_exact = time.perf_counter() - start
    record = {
        "trajectory": records,
        "blowup_n": blowup_n,
        "blowup_clauses": len(blowup),
        "blowup_nodes": circuit.size,
        "planned_budget": planned,
        "probe_budgets_admit_observed": admitted,
        "exact_compile_ms": round(t_exact * 1e3, 2),
    }
    print(f"planner: trajectory over n={probe} plans budget {planned} "
          f"for n={blowup_n} (true size {circuit.size} nodes)")
    ok = admitted and planned < circuit.size
    if not admitted:
        print("PLANNER would abort formulas it watched compile",
              file=sys.stderr)
    if planned >= circuit.size:
        print("PLANNER budget admits the blow-up size — no early "
              "abort", file=sys.stderr)
    return ok, record


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    ps = [2, 3] if quick else [2, 3, 4]
    ok_samples, reduction = check_sample_reduction(ps)
    ok_relative, relative = check_relative_error(quick)
    ok_planner, planning = check_budget_planning(quick)
    ok = ok_samples and ok_relative and ok_planner
    _bench_io.emit("adaptive", {
        "quick": quick,
        "epsilon": str(EPSILON),
        "delta": str(DELTA),
        "sample_reduction": reduction,
        "relative_error": relative,
        "budget_planning": planning,
        "ok": ok,
    })
    if not ok:
        print("perf regression: adaptive estimation lost its edge "
              "over the fixed-n estimator", file=sys.stderr)
        return 1
    print("ok: empirical-Bernstein stopping beats Hoeffding >=3x on "
          "low-variance lineages, importance sampling delivers "
          "relative error on small probabilities, and the planner "
          "prices budgets off the growth trajectory")
    return 0


if __name__ == "__main__":
    sys.exit(main())
