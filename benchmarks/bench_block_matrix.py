"""E4/E5/E6/F1 — the block matrix A(p).

Shape expectations: the Lemma 3.19 matrix-power fast path equals direct
WMC for every p while being asymptotically cheaper; the spectral
conditions of Theorem 3.14 hold for every final Type-I query; parallel
blocks multiply (Eq. 25, Figure 1).
"""

import pytest

from repro.core import catalog
from repro.reduction.block_matrix import (
    theorem_314_conditions,
    z_matrix_direct,
    z_matrix_power,
)
from repro.reduction.blocks import parallel_block, path_block
from repro.tid.database import r_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import cnf_probability


@pytest.mark.parametrize("p", [1, 2, 3, 4])
def test_e5_direct_wmc(benchmark, p):
    """Direct z_ab(p) by WMC: exponential-ish in p."""
    query = catalog.rst_query()
    matrix = benchmark(z_matrix_direct, query, p)
    assert matrix == z_matrix_power(query, p)
    benchmark.extra_info["p"] = p


@pytest.mark.parametrize("p", [4, 16, 64, 256])
def test_e5_matrix_power(benchmark, p):
    """Fast path: A(1)^p / 2^(p-1) — handles p far beyond WMC reach."""
    query = catalog.rst_query()
    base = z_matrix_direct(query, 1)
    matrix = benchmark(z_matrix_power, query, p, base)
    assert matrix[0, 1] == matrix[1, 0]
    benchmark.extra_info["p"] = p


@pytest.mark.parametrize("name,ctor", [
    ("rst", catalog.rst_query),
    ("path2", lambda: catalog.path_query(2)),
    ("wide", catalog.wide_final_query),
])
def test_e6_spectral_conditions(benchmark, name, ctor):
    query = ctor()
    conditions = benchmark(theorem_314_conditions, query)
    assert all(conditions.values())
    benchmark.extra_info["query"] = name


def test_f1_parallel_block_product(benchmark):
    """Figure 1 / Eq. 25: y_ab(p1,p2) = y_ab(p1) y_ab(p2)."""
    query = catalog.rst_query()

    def check():
        singles = {}
        for p in (1, 2):
            tid = path_block(query, p, tag=f"_s{p}")
            f = lineage(query, tid).condition(
                r_tuple("u"), False).condition(r_tuple("v"), True)
            singles[p] = cnf_probability(f, tid.probability)
        tid = parallel_block(query, [1, 2])
        f = lineage(query, tid).condition(
            r_tuple("u"), False).condition(r_tuple("v"), True)
        joint = cnf_probability(f, tid.probability)
        assert joint == singles[1] * singles[2]
        return joint

    benchmark(check)
