"""Warm resident service vs cold per-invocation CLI.

The service exists to amortize two costs every cold ``repro``
invocation pays on *each* query: interpreter + import start-up, and
the exponential compilation (absent a disk store).  This benchmark
measures both deployment shapes on the same repeated-sweep workload:

* **cold** — one ``python -m repro sweep ...`` subprocess per request,
  the pre-service deployment model;
* **warm** — one resident ``ReproServer`` answering the same requests
  over its socket, circuits compiled once and shared.

The acceptance bar is a >=5x per-request latency win for the warm
service on repeated sweeps, plus the coalescing invariant: N
concurrent same-fingerprint sweep requests trigger exactly one
compilation and one batched pass (asserted via the ``stats``
endpoint).

Request tracing rides every warm request, so this benchmark also
guards its zero-cost-when-disabled claim: the same workload against
a ``tracing=False`` server (where every ``span()`` call returns the
shared no-op span) must be at least as fast as the traced run, up to
scheduler jitter — if the disabled path ever shows real overhead,
the instrumentation has grown an allocation it must not have.

Run ``python benchmarks/bench_service.py [--quick]``; CI uses
``--quick`` and uploads the emitted ``BENCH_service.json``.
"""

import os
import statistics
import subprocess
import sys
import threading
import time

import _bench_io

from repro.service.client import ServiceClient
from repro.service.server import ReproServer
from repro.tid import wmc

QUERY = "(R|S1)(S1|T)"


def _cli_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.pop("REPRO_CIRCUIT_STORE", None)  # cold means no disk store
    return env


def time_cold_cli(p, grid, requests) -> list[float]:
    """Per-request latency of the pre-service deployment: a fresh
    interpreter, a cold cache, a full compilation — every time."""
    env = _cli_env()
    command = [sys.executable, "-m", "repro", "sweep", QUERY,
               "--p", str(p), "--grid", str(grid)]
    timings = []
    for _ in range(requests):
        start = time.perf_counter()
        proc = subprocess.run(command, capture_output=True, env=env)
        timings.append(time.perf_counter() - start)
        if proc.returncode != 0:
            raise SystemExit(
                f"cold CLI run failed: {proc.stderr.decode()!r}")
    return timings


def time_warm_service(server, p, grid, requests) -> list[float]:
    """Per-request latency against the resident server, after one
    warm-up request pays the single compilation."""
    with ServiceClient(*server.address, timeout=300) as client:
        client.sweep(QUERY, p=p, grid=grid)  # warm the circuit
        timings = []
        for _ in range(requests):
            start = time.perf_counter()
            result = client.sweep(QUERY, p=p, grid=grid)
            timings.append(time.perf_counter() - start)
            assert result["engine"] == "exact"
    return timings


def check_coalescing(server, p, grid, clients) -> tuple[bool, dict]:
    """N concurrent same-fingerprint sweeps -> exactly one compile and
    one batched pass, read back from the stats endpoint."""
    wmc.clear_circuit_cache()
    results = [None] * clients
    barrier = threading.Barrier(clients)

    def worker(i):
        with ServiceClient(*server.address, timeout=300) as client:
            barrier.wait()
            results[i] = client.sweep(QUERY, p=p, grid=grid)

    before = server.coalescer.stats()["batch_passes"]
    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with ServiceClient(*server.address, timeout=300) as client:
        stats = client.stats()
    record = {
        "clients": clients,
        "compiles": stats["cache"]["compiles"],
        "batch_passes": stats["service"]["batch_passes"] - before,
        "coalesced_batches": stats["service"]["coalesced_batches"],
        "all_equal": all(r is not None
                         and r["values"] == results[0]["values"]
                         for r in results),
    }
    # The hard invariants: one compilation (the pool dedupes in-flight
    # work regardless of timing) serving identical values, with at
    # least one genuinely coalesced pass.  batch_passes == 1 also
    # holds in practice but is pure scheduling — a descheduled client
    # arriving after the window closes would split the batch without
    # any defect — so it is reported, not gated.
    ok = (record["compiles"] == 1 and record["all_equal"]
          and record["coalesced_batches"] >= 1)
    if not ok:
        print(f"coalescing broke: {record}", file=sys.stderr)
    return ok, record


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    quick = "--quick" in args
    p, grid = (6, 16) if quick else (8, 32)
    cold_requests = 3 if quick else 5
    warm_requests = 20 if quick else 50
    clients = 4 if quick else 8

    cold = time_cold_cli(p, grid, cold_requests)
    cold_ms = statistics.median(cold) * 1e3

    wmc.clear_circuit_cache()
    wmc.set_circuit_store(None)
    # A generous window costs nothing on the warm path (hot circuits
    # skip it) and gives the coalescing check real margin on loaded
    # CI runners.
    with ReproServer(port=0, window=0.25) as server:
        warm = time_warm_service(server, p, grid, warm_requests)
        warm_ms = statistics.median(warm) * 1e3
        coalesce_ok, coalesce = check_coalescing(server, p, grid,
                                                 clients)

    # The zero-cost-when-disabled claim: the identical warm workload
    # with tracing off must not be slower than the traced run (up to
    # jitter) — the no-op span path is one ContextVar read.
    wmc.clear_circuit_cache()
    wmc.set_circuit_store(None)
    with ReproServer(port=0, window=0.25, tracing=False) as untraced:
        bare = time_warm_service(untraced, p, grid, warm_requests)
        bare_ms = statistics.median(bare) * 1e3
    overhead_pct = (warm_ms - bare_ms) / bare_ms * 100.0
    # Millisecond-scale medians on shared runners jitter; the slack
    # keeps the gate about real overhead, not scheduler noise.
    tracing_ok = bare_ms <= warm_ms * 1.05 + 0.25

    speedup = cold_ms / warm_ms
    target = 5.0
    print(f"repeated {grid}-vector sweep over B_{p}(u, v):")
    print(f"  cold CLI     {cold_ms:8.2f}ms/request "
          f"(median of {cold_requests}; interpreter + compile each "
          f"time)")
    print(f"  warm service {warm_ms:8.2f}ms/request "
          f"(median of {warm_requests}; one shared compilation)")
    print(f"  speedup      {speedup:8.1f}x (target >= {target}x)")
    print(f"  coalescing   {coalesce['clients']} concurrent sweeps -> "
          f"{coalesce['compiles']} compilation, "
          f"{coalesce['batch_passes']} batched pass")
    print(f"  tracing      {warm_ms:8.3f}ms traced vs "
          f"{bare_ms:8.3f}ms untraced "
          f"({overhead_pct:+.1f}% overhead)")

    ok = speedup >= target and coalesce_ok and tracing_ok
    _bench_io.emit("service", {
        "quick": quick,
        "p": p, "grid": grid,
        "cold_requests": cold_requests,
        "warm_requests": warm_requests,
        "cold_median_ms": round(cold_ms, 2),
        "warm_median_ms": round(warm_ms, 3),
        "untraced_median_ms": round(bare_ms, 3),
        "tracing_overhead_pct": round(overhead_pct, 1),
        "speedup": round(speedup, 1),
        "speedup_target": target,
        "coalescing": coalesce,
        "ok": bool(ok),
    })
    if not ok:
        print("perf regression: warm service must beat the cold CLI "
              f">={target}x, coalesce concurrent sweeps, and keep "
              f"disabled tracing free",
              file=sys.stderr)
        return 1
    print("ok: the warm service amortizes start-up and compilation "
          "across requests")
    return 0


if __name__ == "__main__":
    sys.exit(main())
