"""Engine scaling: the exact WMC oracle on block lineages and grids.

Shape expectations: the component/Shannon engine handles path blocks in
time roughly linear in p (the chain decomposes at articulation tuples),
and degrades exponentially only on dense grids — the behaviour a #P
oracle is allowed to have.
"""

import pytest

from repro.core import catalog
from repro.reduction.blocks import path_block
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import cnf_probability, probability

from fractions import Fraction

F = Fraction
HALF = F(1, 2)


@pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
def test_wmc_on_path_blocks(benchmark, p):
    """Path-block lineage: near-linear growth in p."""
    query = catalog.rst_query()
    tid = path_block(query, p)
    formula = lineage(query, tid)

    value = benchmark(cnf_probability, formula, tid.probability)
    assert 0 < value < 1
    benchmark.extra_info["p"] = p
    benchmark.extra_info["n_tuples"] = len(formula.variables())


@pytest.mark.parametrize("n", [2, 3, 4])
def test_wmc_on_grids(benchmark, n):
    """Dense n x n grids: exponential-ish growth (the hard regime)."""
    query = catalog.rst_query()
    U = [f"u{i}" for i in range(n)]
    V = [f"v{j}" for j in range(n)]
    probs = {r_tuple(u): HALF for u in U}
    probs.update({t_tuple(v): HALF for v in V})
    for s in sorted(query.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = HALF
    tid = TID(U, V, probs)

    value = benchmark(probability, query, tid)
    assert 0 < value < 1
    benchmark.extra_info["grid"] = n


def test_wmc_memoization_pays(benchmark):
    """Repeated sub-lineages must hit the cache: a union of identical
    disjoint blocks costs little more than one block."""
    query = catalog.rst_query()
    blocks = [path_block(query, 3, u=f"a{i}", v=f"b{i}", tag=f"_{i}")
              for i in range(6)]
    tid = blocks[0]
    for block in blocks[1:]:
        tid = tid.union(block)

    value = benchmark(probability, query, tid)
    assert 0 < value < 1
    benchmark.extra_info["blocks"] = len(blocks)
